#include "storage/core.h"

#include "chase/chase.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

Instance MakeInstance(const std::vector<Atom>& facts) {
  Instance instance;
  for (const Atom& atom : facts) instance.Insert(atom);
  return instance;
}

TEST(CoreTest, NullFreeInstanceIsItsOwnCore) {
  ParsedProgram program = MustParse("e(a,b). e(b,c).\n");
  Instance instance = MakeInstance(program.facts);
  CoreResult result = ComputeCore(instance);
  EXPECT_EQ(result.core.size(), 2u);
  EXPECT_EQ(result.retractions, 0u);
  EXPECT_TRUE(result.minimized_fully);
}

TEST(CoreTest, FoldsRedundantNullOntoConstant) {
  // e(a,b) and e(a, _:n0): the null edge folds onto the constant edge.
  ParsedProgram program = MustParse("e(a,b).\n");
  Instance instance = MakeInstance(program.facts);
  Term a = Term::Constant(*program.vocabulary.constants.Find("a"));
  instance.Insert(Atom(0, {a, Term::Null(0)}));
  CoreResult result = ComputeCore(instance);
  EXPECT_EQ(result.core.size(), 1u);
  EXPECT_EQ(result.core.CountNulls(), 0u);
}

TEST(CoreTest, KeepsNonRedundantNulls) {
  // e(a, _:n0) with no alternative: the null is essential.
  ParsedProgram program = MustParse("p(a).\n");  // interns 'a'
  Term a = Term::Constant(*program.vocabulary.constants.Find("a"));
  Instance instance;
  StatusOr<PredicateId> e = program.vocabulary.schema.GetOrAdd("e", 2);
  ASSERT_TRUE(e.ok());
  instance.Insert(Atom(*e, {a, Term::Null(0)}));
  CoreResult result = ComputeCore(instance);
  EXPECT_EQ(result.core.size(), 1u);
  EXPECT_EQ(result.core.CountNulls(), 1u);
}

TEST(CoreTest, FoldsNullChainsPairwise) {
  // Two parallel null chains from a: one folds onto the other.
  ParsedProgram program = MustParse("p(a).\n");
  Term a = Term::Constant(*program.vocabulary.constants.Find("a"));
  StatusOr<PredicateId> e = program.vocabulary.schema.GetOrAdd("e", 2);
  ASSERT_TRUE(e.ok());
  Instance instance;
  instance.Insert(Atom(*e, {a, Term::Null(0)}));
  instance.Insert(Atom(*e, {Term::Null(0), Term::Null(1)}));
  instance.Insert(Atom(*e, {a, Term::Null(2)}));
  instance.Insert(Atom(*e, {Term::Null(2), Term::Null(3)}));
  CoreResult result = ComputeCore(instance);
  EXPECT_EQ(result.core.size(), 2u);
  EXPECT_EQ(result.core.CountNulls(), 2u);
}

TEST(CoreTest, SemiObliviousChaseResultFoldsToRestrictedSize) {
  // The so-chase materializes a redundant null (the head was already
  // satisfied); the core eliminates exactly that redundancy, matching
  // the restricted-chase result size.
  ParsedProgram program = MustParse(
      "dept(X) -> headedBy(X,Y).\n"
      "dept(sales). headedBy(sales, carla).\n");
  ChaseOptions so;
  so.variant = ChaseVariant::kSemiOblivious;
  ChaseResult semi = RunChase(program.rules, so, program.facts);
  ASSERT_EQ(semi.outcome, ChaseOutcome::kTerminated);
  EXPECT_EQ(semi.instance.size(), 3u);  // + headedBy(sales, _:n0)

  CoreResult core = ComputeCore(semi.instance);
  EXPECT_EQ(core.core.size(), 2u);
  EXPECT_EQ(core.core.CountNulls(), 0u);

  ChaseOptions restricted;
  restricted.variant = ChaseVariant::kRestricted;
  ChaseResult direct = RunChase(program.rules, restricted, program.facts);
  EXPECT_EQ(direct.instance.size(), core.core.size());
}

TEST(CoreTest, CoreIsStillAModel) {
  ParsedProgram program = MustParse(
      "works(X,Y) -> employee(X), dept(Y).\n"
      "dept(X) -> headedBy(X,Y).\n"
      "works(ann, sales). headedBy(sales, carla).\n");
  ChaseOptions so;
  so.variant = ChaseVariant::kSemiOblivious;
  ChaseResult result = RunChase(program.rules, so, program.facts);
  ASSERT_EQ(result.outcome, ChaseOutcome::kTerminated);
  CoreResult core = ComputeCore(result.instance);
  EXPECT_LE(core.core.size(), result.instance.size());
  EXPECT_TRUE(IsModelOf(core.core, program.rules));
}

TEST(CoreTest, BudgetExhaustionIsReported) {
  ParsedProgram program = MustParse("p(a).\n");
  Term a = Term::Constant(*program.vocabulary.constants.Find("a"));
  StatusOr<PredicateId> e = program.vocabulary.schema.GetOrAdd("e", 2);
  ASSERT_TRUE(e.ok());
  Instance instance;
  for (uint32_t i = 0; i < 10; ++i) {
    instance.Insert(Atom(*e, {a, Term::Null(i)}));
  }
  CoreOptions options;
  options.max_fold_attempts = 1;
  CoreResult result = ComputeCore(instance, options);
  EXPECT_FALSE(result.minimized_fully);
}

}  // namespace
}  // namespace gchase
