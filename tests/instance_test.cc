#include "storage/instance.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "model/atom.h"
#include "model/vocabulary.h"
#include "storage/io.h"

namespace gchase {
namespace {

Atom MakeAtom(PredicateId pred, std::vector<uint32_t> constant_ids) {
  Atom atom;
  atom.predicate = pred;
  for (uint32_t id : constant_ids) atom.args.push_back(Term::Constant(id));
  return atom;
}

TEST(InstanceTest, InsertDedupsAndAssignsDenseIds) {
  Instance instance;
  auto [id0, new0] = instance.Insert(MakeAtom(0, {1, 2}));
  auto [id1, new1] = instance.Insert(MakeAtom(0, {1, 3}));
  auto [id2, new2] = instance.Insert(MakeAtom(0, {1, 2}));
  EXPECT_TRUE(new0);
  EXPECT_TRUE(new1);
  EXPECT_FALSE(new2);
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, id0);
  EXPECT_EQ(instance.size(), 2u);
  EXPECT_TRUE(instance.Contains(MakeAtom(0, {1, 2})));
  EXPECT_FALSE(instance.Contains(MakeAtom(0, {9, 9})));
  EXPECT_EQ(instance.Find(MakeAtom(0, {1, 3})), std::optional<AtomId>(1u));
}

TEST(InstanceTest, PredicateIndex) {
  Instance instance;
  instance.Insert(MakeAtom(0, {1}));
  instance.Insert(MakeAtom(2, {1}));
  instance.Insert(MakeAtom(0, {2}));
  EXPECT_EQ(instance.AtomsWithPredicate(0).size(), 2u);
  EXPECT_EQ(instance.AtomsWithPredicate(1).size(), 0u);
  EXPECT_EQ(instance.AtomsWithPredicate(2).size(), 1u);
  EXPECT_EQ(instance.AtomsWithPredicate(99).size(), 0u);
}

TEST(InstanceTest, PositionIndex) {
  Instance instance;
  instance.Insert(MakeAtom(0, {1, 2}));
  instance.Insert(MakeAtom(0, {1, 3}));
  instance.Insert(MakeAtom(0, {2, 2}));
  EXPECT_EQ(instance.AtomsWithTermAt(0, 0, Term::Constant(1)).size(), 2u);
  EXPECT_EQ(instance.AtomsWithTermAt(0, 1, Term::Constant(2)).size(), 2u);
  EXPECT_EQ(instance.AtomsWithTermAt(0, 1, Term::Constant(9)).size(), 0u);
}

TEST(InstanceTest, CountNulls) {
  Instance instance;
  Atom atom(0, {Term::Null(0), Term::Null(1)});
  Atom atom2(0, {Term::Null(1), Term::Constant(0)});
  instance.Insert(atom);
  instance.Insert(atom2);
  EXPECT_EQ(instance.CountNulls(), 2u);
}

TEST(InstanceDeathTest, RejectsNonGroundAtoms) {
  Instance instance;
  Atom bad(0, {Term::Variable(0)});
  EXPECT_DEATH(instance.Insert(bad), "ground");
}

// --- columnar storage: TryAdd, views, arena ------------------------------

TEST(InstanceTest, TryAddReturnsPriorIdWithoutSeparateContains) {
  // The single-probe contract: a duplicate TryAdd hands back the original
  // id, so Contains-then-Add call sites collapse into one hash + probe.
  Instance instance;
  auto [id0, new0] = instance.TryAdd(MakeAtom(3, {7, 8, 9}));
  EXPECT_TRUE(new0);
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto [id, inserted] = instance.TryAdd(MakeAtom(3, {7, 8, 9}));
    EXPECT_FALSE(inserted);
    EXPECT_EQ(id, id0);
  }
  EXPECT_EQ(instance.size(), 1u);
}

TEST(InstanceTest, AtomViewsMirrorInsertedAtoms) {
  Instance instance;
  Atom original = MakeAtom(5, {1, 2, 3});
  auto [id, inserted] = instance.TryAdd(original);
  ASSERT_TRUE(inserted);
  const AtomView view = instance.atom(id);
  EXPECT_EQ(view.predicate, original.predicate);
  ASSERT_EQ(view.arity(), original.arity());
  for (uint32_t i = 0; i < view.arity(); ++i) {
    EXPECT_EQ(view.args[i], original.args[i]);
  }
  EXPECT_FALSE(view.HasNull());
  EXPECT_TRUE(view.ToAtom() == original);

  // atoms() iterates views in id order; MaterializeAtoms copies them.
  instance.TryAdd(MakeAtom(5, {4, 5, 6}));
  std::vector<Atom> materialized = instance.MaterializeAtoms();
  ASSERT_EQ(materialized.size(), instance.size());
  AtomId next = 0;
  for (AtomView atom : instance.atoms()) {
    EXPECT_TRUE(atom.ToAtom() == materialized[next]);
    EXPECT_TRUE(atom == instance.atom(next));
    ++next;
  }
  EXPECT_EQ(next, instance.size());
}

TEST(InstanceTest, ZeroArityAtomsRoundTripThroughTheArena) {
  Instance instance;
  Atom nullary;
  nullary.predicate = 2;
  auto [id, inserted] = instance.TryAdd(nullary);
  EXPECT_TRUE(inserted);
  EXPECT_FALSE(instance.TryAdd(nullary).second);
  EXPECT_EQ(instance.atom(id).arity(), 0u);
  EXPECT_TRUE(instance.atom(id).ToAtom() == nullary);
}

TEST(InstanceTest, CountWithPredicateSinceMatchesWatermarkSemantics) {
  Instance instance;
  instance.TryAdd(MakeAtom(0, {1}));                          // id 0
  instance.TryAdd(MakeAtom(1, {1}));                          // id 1
  const AtomId watermark = instance.size();
  instance.TryAdd(MakeAtom(0, {2}));                          // id 2
  instance.TryAdd(MakeAtom(0, {3}));                          // id 3
  EXPECT_EQ(instance.CountWithPredicateSince(0, 0), 3u);
  EXPECT_EQ(instance.CountWithPredicateSince(0, watermark), 2u);
  EXPECT_EQ(instance.CountWithPredicateSince(1, watermark), 0u);
  EXPECT_EQ(instance.CountWithPredicateSince(9, 0), 0u);
}

TEST(InstanceTest, ReserveAdditionalPreservesContentAndIds) {
  Instance instance;
  for (uint32_t i = 0; i < 10; ++i) instance.TryAdd(MakeAtom(0, {i, i + 1}));
  std::vector<Atom> before = instance.MaterializeAtoms();
  instance.ReserveAdditional(1000, 2000);
  ASSERT_EQ(instance.size(), before.size());
  for (AtomId id = 0; id < instance.size(); ++id) {
    EXPECT_TRUE(instance.atom(id).ToAtom() == before[id]);
  }
  // Lookups still work after the rehash/reserve.
  EXPECT_TRUE(instance.Contains(MakeAtom(0, {3, 4})));
  EXPECT_EQ(instance.AtomsWithTermAt(0, 0, Term::Constant(3)).size(), 1u);
  // And bulk adds proceed on the reserved capacity.
  for (uint32_t i = 0; i < 1000; ++i) {
    instance.TryAdd(MakeAtom(1, {i, i}));
  }
  EXPECT_EQ(instance.size(), before.size() + 1000);
}

TEST(InstanceTest, ReserveAdditionalUnderestimateFallsBackToGeometricGrowth) {
  // A hint far below the eventual load is legal: the tables must fall
  // back to their geometric growth policies mid-add with no effect on
  // ids, dedup or the indexes. Twin an under-reserved instance against a
  // plain one and demand bit-identical behaviour.
  Instance reserved;
  reserved.ReserveAdditional(4, 8);
  Instance plain;
  for (uint32_t i = 0; i < 3000; ++i) {
    Atom atom = MakeAtom(i % 5, {i, i + 1});
    auto [reserved_id, reserved_new] = reserved.TryAdd(atom);
    auto [plain_id, plain_new] = plain.TryAdd(atom);
    ASSERT_EQ(reserved_id, plain_id);
    ASSERT_EQ(reserved_new, plain_new);
  }
  // A bulk batch bigger than the stale hint rides the same fallback.
  std::vector<Term> rows;
  for (uint32_t i = 0; i < 500; ++i) {
    rows.push_back(Term::Constant(100000 + i));
    rows.push_back(Term::Constant(i));
  }
  const uint32_t added_reserved =
      reserved.TryAddBatch(6, rows.data(), 2, 500);
  const uint32_t added_plain = plain.TryAddBatch(6, rows.data(), 2, 500);
  EXPECT_EQ(added_reserved, 500u);
  EXPECT_EQ(added_reserved, added_plain);
  ASSERT_EQ(reserved.size(), plain.size());
  for (uint32_t i = 0; i < 3000; ++i) {
    ASSERT_EQ(reserved.Find(MakeAtom(i % 5, {i, i + 1})),
              std::optional<AtomId>(i));
  }
  EXPECT_EQ(reserved.PositionIndexEntries(), plain.PositionIndexEntries());
  EXPECT_EQ(reserved.AtomsWithTermAt(6, 0, Term::Constant(100007)).size(), 1u);
}

TEST(InstanceTest, StressDedupAndPositionIndexAcrossGrowth) {
  // Push the open-addressing tables through several growth cycles and
  // verify every atom stays findable with a correct posting list.
  Instance instance;
  for (uint32_t i = 0; i < 5000; ++i) {
    auto [id, inserted] = instance.TryAdd(MakeAtom(i % 7, {i, i % 13}));
    ASSERT_TRUE(inserted);
    ASSERT_EQ(id, i);
  }
  for (uint32_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(instance.Find(MakeAtom(i % 7, {i, i % 13})),
              std::optional<AtomId>(i));
    ASSERT_EQ(instance.AtomsWithTermAt(i % 7, 0, Term::Constant(i)).size(),
              1u);
  }
  EXPECT_EQ(instance.PositionIndexEntries(), 2u * 5000u);
}

// --- arena atoms round-trip bit-identically through io.cc ----------------

TEST(InstanceIoTest, ArenaAtomsRoundTripThroughTextIo) {
  // Ground atoms written by io.cc and read back must reproduce the arena
  // contents bit for bit (same predicates, same term raws, same order).
  Vocabulary vocabulary;
  StatusOr<PredicateId> p = vocabulary.schema.GetOrAdd("p", 2);
  StatusOr<PredicateId> q = vocabulary.schema.GetOrAdd("q", 1);
  ASSERT_TRUE(p.ok() && q.ok());
  Instance instance;
  for (uint32_t i = 0; i < 20; ++i) {
    Atom atom;
    atom.predicate = *p;
    atom.args.push_back(
        Term::Constant(vocabulary.constants.Intern("a" + std::to_string(i))));
    atom.args.push_back(Term::Constant(
        vocabulary.constants.Intern("b" + std::to_string(i % 5))));
    instance.TryAdd(atom);
    Atom unary;
    unary.predicate = *q;
    unary.args.push_back(
        Term::Constant(vocabulary.constants.Intern("a" + std::to_string(i))));
    instance.TryAdd(unary);
  }

  const std::string text = WriteInstanceText(instance, vocabulary);
  StatusOr<Instance> read = ReadInstanceText(text, &vocabulary);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), instance.size());
  for (AtomId id = 0; id < instance.size(); ++id) {
    const AtomView a = instance.atom(id);
    const AtomView b = read->atom(id);
    ASSERT_EQ(a.predicate, b.predicate) << "atom " << id;
    ASSERT_EQ(a.arity(), b.arity()) << "atom " << id;
    for (uint32_t pos = 0; pos < a.arity(); ++pos) {
      ASSERT_EQ(a.args[pos].raw(), b.args[pos].raw())
          << "atom " << id << " pos " << pos;
    }
  }
  // Writing the read-back instance reproduces the text verbatim: the
  // serialization is a pure function of the arena contents.
  EXPECT_EQ(WriteInstanceText(*read, vocabulary), text);
}

TEST(InstanceIoTest, NulledAtomsWriteStableText) {
  // Labeled nulls cannot be re-read as constants, but their *written*
  // form must be a stable function of the arena (same text on every
  // call), since benchmarks diff serialized instances across engines.
  Vocabulary vocabulary;
  StatusOr<PredicateId> p = vocabulary.schema.GetOrAdd("p", 2);
  ASSERT_TRUE(p.ok());
  Instance instance;
  Atom atom;
  atom.predicate = *p;
  atom.args.push_back(
      Term::Constant(vocabulary.constants.Intern("c")));
  atom.args.push_back(Term::Null(42));
  instance.TryAdd(atom);
  const std::string first = WriteInstanceText(instance, vocabulary);
  EXPECT_EQ(first, WriteInstanceText(instance, vocabulary));
  EXPECT_NE(first.find("_:n42"), std::string::npos);
}

// --- bulk insertion: TryAddBatch -----------------------------------------

TEST(InstanceTest, TryAddBatchDedupsWithinTheBatch) {
  Instance instance;
  const Term rows[] = {
      Term::Constant(1), Term::Constant(2),  // new
      Term::Constant(1), Term::Constant(2),  // in-batch duplicate
      Term::Constant(3), Term::Constant(4),  // new
  };
  EXPECT_EQ(instance.TryAddBatch(5, rows, 2, 3), 2u);
  EXPECT_EQ(instance.size(), 2u);
  EXPECT_EQ(instance.Find(MakeAtom(5, {1, 2})), std::optional<AtomId>(0u));
  EXPECT_EQ(instance.Find(MakeAtom(5, {3, 4})), std::optional<AtomId>(1u));
}

TEST(InstanceTest, TryAddBatchDedupsAgainstExistingAtoms) {
  Instance instance;
  instance.Insert(MakeAtom(5, {1, 2}));
  const Term rows[] = {
      Term::Constant(1), Term::Constant(2),  // pre-existing
      Term::Constant(9), Term::Constant(9),  // new
  };
  EXPECT_EQ(instance.TryAddBatch(5, rows, 2, 2), 1u);
  EXPECT_EQ(instance.size(), 2u);
  // The fresh row got the next dense id, exactly as serial TryAdd would
  // have assigned it.
  EXPECT_EQ(instance.Find(MakeAtom(5, {9, 9})), std::optional<AtomId>(1u));
}

TEST(InstanceTest, TryAddBatchMaintainsAllIndexes) {
  // Batch-inserted atoms must be indistinguishable from serial inserts
  // in every index the join engine reads.
  Instance batch_built;
  Instance serial_built;
  std::vector<Term> rows;
  for (uint32_t i = 0; i < 64; ++i) {
    rows.push_back(Term::Constant(i % 7));
    rows.push_back(Term::Null(i));
    serial_built.TryAddTerms(3, &rows[rows.size() - 2], 2);
  }
  EXPECT_EQ(batch_built.TryAddBatch(3, rows.data(), 2, 64), 64u);
  ASSERT_EQ(batch_built.size(), serial_built.size());
  EXPECT_EQ(batch_built.AtomsWithPredicate(3).size(), 64u);
  for (uint32_t c = 0; c < 7; ++c) {
    EXPECT_EQ(batch_built.AtomsWithTermAt(3, 0, Term::Constant(c)),
              serial_built.AtomsWithTermAt(3, 0, Term::Constant(c)))
        << "constant " << c;
  }
  for (uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(batch_built.AtomsWithTermAt(3, 1, Term::Null(i)),
              serial_built.AtomsWithTermAt(3, 1, Term::Null(i)))
        << "null " << i;
  }
}

TEST(InstanceTest, TryAddBatchEmptyAndZeroArity) {
  Instance instance;
  const Term dummy[] = {Term::Constant(0)};
  EXPECT_EQ(instance.TryAddBatch(1, dummy, 2, 0), 0u);
  EXPECT_EQ(instance.size(), 0u);
  // Zero-ary rows: all duplicates of each other after the first.
  EXPECT_EQ(instance.TryAddBatch(2, dummy, 0, 3), 1u);
  EXPECT_EQ(instance.size(), 1u);
  EXPECT_TRUE(instance.Contains(Atom(2, {})));
}

}  // namespace
}  // namespace gchase
