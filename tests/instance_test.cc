#include "storage/instance.h"

#include "gtest/gtest.h"
#include "model/atom.h"

namespace gchase {
namespace {

Atom MakeAtom(PredicateId pred, std::vector<uint32_t> constant_ids) {
  Atom atom;
  atom.predicate = pred;
  for (uint32_t id : constant_ids) atom.args.push_back(Term::Constant(id));
  return atom;
}

TEST(InstanceTest, InsertDedupsAndAssignsDenseIds) {
  Instance instance;
  auto [id0, new0] = instance.Insert(MakeAtom(0, {1, 2}));
  auto [id1, new1] = instance.Insert(MakeAtom(0, {1, 3}));
  auto [id2, new2] = instance.Insert(MakeAtom(0, {1, 2}));
  EXPECT_TRUE(new0);
  EXPECT_TRUE(new1);
  EXPECT_FALSE(new2);
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, id0);
  EXPECT_EQ(instance.size(), 2u);
  EXPECT_TRUE(instance.Contains(MakeAtom(0, {1, 2})));
  EXPECT_FALSE(instance.Contains(MakeAtom(0, {9, 9})));
  EXPECT_EQ(instance.Find(MakeAtom(0, {1, 3})), std::optional<AtomId>(1u));
}

TEST(InstanceTest, PredicateIndex) {
  Instance instance;
  instance.Insert(MakeAtom(0, {1}));
  instance.Insert(MakeAtom(2, {1}));
  instance.Insert(MakeAtom(0, {2}));
  EXPECT_EQ(instance.AtomsWithPredicate(0).size(), 2u);
  EXPECT_EQ(instance.AtomsWithPredicate(1).size(), 0u);
  EXPECT_EQ(instance.AtomsWithPredicate(2).size(), 1u);
  EXPECT_EQ(instance.AtomsWithPredicate(99).size(), 0u);
}

TEST(InstanceTest, PositionIndex) {
  Instance instance;
  instance.Insert(MakeAtom(0, {1, 2}));
  instance.Insert(MakeAtom(0, {1, 3}));
  instance.Insert(MakeAtom(0, {2, 2}));
  EXPECT_EQ(instance.AtomsWithTermAt(0, 0, Term::Constant(1)).size(), 2u);
  EXPECT_EQ(instance.AtomsWithTermAt(0, 1, Term::Constant(2)).size(), 2u);
  EXPECT_EQ(instance.AtomsWithTermAt(0, 1, Term::Constant(9)).size(), 0u);
}

TEST(InstanceTest, CountNulls) {
  Instance instance;
  Atom atom(0, {Term::Null(0), Term::Null(1)});
  Atom atom2(0, {Term::Null(1), Term::Constant(0)});
  instance.Insert(atom);
  instance.Insert(atom2);
  EXPECT_EQ(instance.CountNulls(), 2u);
}

TEST(InstanceDeathTest, RejectsNonGroundAtoms) {
  Instance instance;
  Atom bad(0, {Term::Variable(0)});
  EXPECT_DEATH(instance.Insert(bad), "ground");
}

}  // namespace
}  // namespace gchase
