#include "model/parser.h"

#include "gtest/gtest.h"
#include "model/printer.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

TEST(ParserTest, RulesAndFacts) {
  ParsedProgram program = MustParse(
      "% chase termination demo\n"
      "person(X) -> hasFather(X,Y), person(Y).\n"
      "person(bob).\n"
      "knows(bob, 'Alice Smith').\n");
  EXPECT_EQ(program.rules.size(), 1u);
  ASSERT_EQ(program.facts.size(), 2u);
  EXPECT_EQ(program.vocabulary.schema.num_predicates(), 3u);
  const Tgd& rule = program.rules.rule(0);
  EXPECT_EQ(rule.body().size(), 1u);
  EXPECT_EQ(rule.head().size(), 2u);
  EXPECT_EQ(rule.variable_names(), (std::vector<std::string>{"X", "Y"}));
}

TEST(ParserTest, ZeroAryAtoms) {
  ParsedProgram program = MustParse(
      "go() -> done().\n"
      "go().\n");
  EXPECT_EQ(program.rules.size(), 1u);
  EXPECT_EQ(program.facts.size(), 1u);
  EXPECT_EQ(program.vocabulary.schema.arity(0), 0u);
}

TEST(ParserTest, NumericPredicateAndConstantNames) {
  // The paper's standard databases use predicates named 0 and 1.
  ParsedProgram program = MustParse("0(0). 1(1).\n");
  EXPECT_EQ(program.facts.size(), 2u);
  EXPECT_TRUE(program.vocabulary.schema.Find("0").has_value());
  EXPECT_TRUE(program.vocabulary.constants.Find("1").has_value());
}

TEST(ParserTest, UnderscoreStartsVariable) {
  ParsedProgram program = MustParse("p(_any, x1) -> q(_any).\n");
  const Tgd& rule = program.rules.rule(0);
  EXPECT_EQ(rule.variable_names(), (std::vector<std::string>{"_any"}));
  // x1 is a constant (lower-case start).
  EXPECT_TRUE(program.vocabulary.constants.Find("x1").has_value());
}

TEST(ParserTest, ErrorsCarryLineAndColumn) {
  StatusOr<ParsedProgram> result = ParseProgram("p(a).\nq(X) -> .\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("2:"), std::string::npos)
      << result.status().ToString();
}

TEST(ParserTest, NonGroundFactRejected) {
  StatusOr<ParsedProgram> result = ParseProgram("p(X).\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ground"), std::string::npos);
}

TEST(ParserTest, ArityConflictRejected) {
  StatusOr<ParsedProgram> result = ParseProgram("p(a). p(a,b).\n");
  EXPECT_FALSE(result.ok());
}

TEST(ParserTest, UnterminatedRuleRejected) {
  EXPECT_FALSE(ParseProgram("p(X) -> q(X)").ok());
  EXPECT_FALSE(ParseProgram("p(a)").ok());
  EXPECT_FALSE(ParseProgram("p(a,).").ok());
  EXPECT_FALSE(ParseProgram("p(a.").ok());
  EXPECT_FALSE(ParseProgram("-> q(a).").ok());
}

TEST(ParserTest, QuotedConstants) {
  ParsedProgram program = MustParse("name(bob, 'Robert Tables').\n");
  EXPECT_TRUE(
      program.vocabulary.constants.Find("Robert Tables").has_value());
  EXPECT_FALSE(ParseProgram("p('unterminated).").ok());
}

TEST(ParserTest, QueryParsing) {
  ParsedProgram program = MustParse("p(a,b).\n");
  StatusOr<ParsedQuery> query =
      ParseQuery("p(X,Y), q(Y, b)", &program.vocabulary);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->atoms.size(), 2u);
  EXPECT_EQ(query->variable_names, (std::vector<std::string>{"X", "Y"}));
  // q was added to the schema on the fly.
  EXPECT_TRUE(program.vocabulary.schema.Find("q").has_value());
}

TEST(PrinterTest, RuleRoundTrip) {
  const char* kText = "person(X), age(X,Y) -> hasFather(X,Z), person(Z) .";
  ParsedProgram program = MustParse(std::string(kText) + "\n");
  std::string printed =
      RuleToString(program.rules.rule(0), program.vocabulary);
  // Re-parse the printed form; it must yield the same rule text again.
  ParsedProgram reparsed = MustParse(printed + "\n");
  EXPECT_EQ(RuleToString(reparsed.rules.rule(0), reparsed.vocabulary),
            printed);
}

TEST(PrinterTest, TermRendering) {
  ParsedProgram program = MustParse("p(a).\n");
  Vocabulary& vocab = program.vocabulary;
  EXPECT_EQ(TermToString(Term::Constant(0), vocab), "a");
  EXPECT_EQ(TermToString(Term::Null(3), vocab), "_:n3");
  std::vector<std::string> names{"X"};
  EXPECT_EQ(TermToString(Term::Variable(0), vocab, &names), "X");
  EXPECT_EQ(TermToString(Term::Variable(9), vocab, &names), "?9");
}

TEST(PrinterTest, InstanceAtomRendering) {
  ParsedProgram program = MustParse("edge(a,b).\n");
  EXPECT_EQ(AtomToString(program.facts[0], program.vocabulary),
            "edge(a,b)");
}

}  // namespace
}  // namespace gchase
