#include "storage/homomorphism.h"

#include "gtest/gtest.h"
#include "storage/query.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

/// Loads facts into an instance.
Instance MakeInstance(const std::vector<Atom>& facts) {
  Instance instance;
  for (const Atom& atom : facts) instance.Insert(atom);
  return instance;
}

TEST(HomomorphismTest, EnumeratesAllMatches) {
  ParsedProgram program = MustParse(
      "e(a,b). e(b,c). e(c,d). e(b,d).\n");
  Instance instance = MakeInstance(program.facts);
  StatusOr<ParsedQuery> query =
      ParseQuery("e(X,Y), e(Y,Z)", &program.vocabulary);
  ASSERT_TRUE(query.ok());
  HomomorphismFinder finder(instance);
  int count = 0;
  finder.FindAll(query->atoms, 3, [&count](const Binding&) {
    ++count;
    return true;
  });
  // Paths of length 2: a-b-c, a-b-d, b-c-d.
  EXPECT_EQ(count, 3);
}

TEST(HomomorphismTest, RepeatedVariablesConstrain) {
  ParsedProgram program = MustParse("p(a,a). p(a,b).\n");
  Instance instance = MakeInstance(program.facts);
  StatusOr<ParsedQuery> query = ParseQuery("p(X,X)", &program.vocabulary);
  ASSERT_TRUE(query.ok());
  HomomorphismFinder finder(instance);
  std::optional<Binding> match = finder.FindOne(query->atoms, 1);
  ASSERT_TRUE(match.has_value());
  Term a = Term::Constant(*program.vocabulary.constants.Find("a"));
  EXPECT_EQ((*match)[0], a);
}

TEST(HomomorphismTest, ConstantsInPatternMustMatch) {
  ParsedProgram program = MustParse("p(a,b). p(c,b).\n");
  Instance instance = MakeInstance(program.facts);
  StatusOr<ParsedQuery> query = ParseQuery("p(a, Y)", &program.vocabulary);
  ASSERT_TRUE(query.ok());
  HomomorphismFinder finder(instance);
  int count = 0;
  finder.FindAll(query->atoms, 1, [&count](const Binding&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, InitialBindingRestricts) {
  ParsedProgram program = MustParse("p(a,b). p(c,d).\n");
  Instance instance = MakeInstance(program.facts);
  StatusOr<ParsedQuery> query = ParseQuery("p(X,Y)", &program.vocabulary);
  ASSERT_TRUE(query.ok());
  HomomorphismFinder finder(instance);
  Term c = Term::Constant(*program.vocabulary.constants.Find("c"));
  Binding initial(2, UnboundTerm());
  initial[0] = c;
  std::optional<Binding> match = finder.FindOne(query->atoms, 2, initial);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ((*match)[0], c);
  Term d = Term::Constant(*program.vocabulary.constants.Find("d"));
  EXPECT_EQ((*match)[1], d);
}

TEST(HomomorphismTest, DeltaModeRequiresNewAtoms) {
  ParsedProgram program = MustParse("e(a,b). e(b,c).\n");
  Instance instance = MakeInstance(program.facts);
  StatusOr<ParsedQuery> query = ParseQuery("e(X,Y)", &program.vocabulary);
  ASSERT_TRUE(query.ok());
  HomomorphismFinder finder(instance);
  HomSearchOptions options;
  options.watermark = 1;  // atom 0 is "old", atom 1 is "delta"
  options.ranges = {MatchRange::kDeltaOnly};
  int count = 0;
  finder.FindAllWithOptions(query->atoms, 2, options, Binding(),
                            [&count](const Binding&) {
                              ++count;
                              return true;
                            });
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, EarlyStopViaCallback) {
  ParsedProgram program = MustParse("p(a). p(b). p(c).\n");
  Instance instance = MakeInstance(program.facts);
  StatusOr<ParsedQuery> query = ParseQuery("p(X)", &program.vocabulary);
  ASSERT_TRUE(query.ok());
  HomomorphismFinder finder(instance);
  int count = 0;
  finder.FindAll(query->atoms, 1, [&count](const Binding&) {
    ++count;
    return count < 2;  // stop after the second match
  });
  EXPECT_EQ(count, 2);
}

TEST(QueryTest, AnswersAndCertainAnswers) {
  ParsedProgram program = MustParse("e(a,b).\n");
  Instance instance = MakeInstance(program.facts);
  // Add a null edge: e(b, _:n0).
  Term b = Term::Constant(*program.vocabulary.constants.Find("b"));
  instance.Insert(Atom(0, {b, Term::Null(0)}));

  StatusOr<ParsedQuery> parsed = ParseQuery("e(X,Y)", &program.vocabulary);
  ASSERT_TRUE(parsed.ok());
  ConjunctiveQuery query;
  query.atoms = parsed->atoms;
  query.num_variables = 2;
  query.answer_variables = {1};
  EXPECT_EQ(EvaluateQuery(instance, query).size(), 2u);
  std::set<AnswerTuple> certain = CertainAnswers(instance, query);
  ASSERT_EQ(certain.size(), 1u);
  EXPECT_EQ((*certain.begin())[0], b);
  EXPECT_TRUE(EntailsBooleanQuery(instance, query));
}

TEST(QueryTest, SubstituteAtomAppliesBinding) {
  Atom pattern(3, {Term::Variable(0), Term::Constant(7), Term::Variable(1)});
  Binding binding{Term::Constant(1), Term::Null(2)};
  Atom image = SubstituteAtom(pattern, binding);
  EXPECT_EQ(image.args[0], Term::Constant(1));
  EXPECT_EQ(image.args[1], Term::Constant(7));
  EXPECT_EQ(image.args[2], Term::Null(2));
}

}  // namespace
}  // namespace gchase
