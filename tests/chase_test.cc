#include "chase/chase.h"

#include "gtest/gtest.h"
#include "model/parser.h"
#include "storage/query.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

ChaseOptions Options(ChaseVariant variant) {
  ChaseOptions options;
  options.variant = variant;
  options.max_atoms = 10000;
  options.max_steps = 100000;
  return options;
}

TEST(ChaseTest, DatalogTransitiveClosureTerminates) {
  ParsedProgram program = MustParse(
      "e(X,Y), e(Y,Z) -> e(X,Z).\n"
      "e(a,b). e(b,c). e(c,d).\n");
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    ChaseResult result = RunChase(program.rules, Options(variant),
                                  program.facts);
    EXPECT_EQ(result.outcome, ChaseOutcome::kTerminated)
        << ChaseVariantName(variant);
    // Closure of a 4-chain: ab bc cd ac bd ad = 6 atoms.
    EXPECT_EQ(result.instance.size(), 6u) << ChaseVariantName(variant);
    EXPECT_TRUE(IsModelOf(result.instance, program.rules));
  }
}

TEST(ChaseTest, PersonExampleHitsCapForAllVariants) {
  // Paper Example 1: diverges under every chase variant.
  ParsedProgram program = MustParse(
      "person(X) -> hasFather(X,Y), person(Y).\n"
      "person(bob).\n");
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    ChaseOptions options = Options(variant);
    options.max_atoms = 500;
    ChaseResult result = RunChase(program.rules, options, program.facts);
    EXPECT_EQ(result.outcome, ChaseOutcome::kResourceLimit)
        << ChaseVariantName(variant);
  }
}

TEST(ChaseTest, RestrictedChaseSkipsSatisfiedTriggers) {
  // The head is pre-satisfied: restricted adds nothing, (semi-)oblivious
  // create a redundant null.
  ParsedProgram program = MustParse(
      "person(X) -> hasFather(X,Y).\n"
      "person(bob). hasFather(bob,carl).\n");
  ChaseResult restricted =
      RunChase(program.rules, Options(ChaseVariant::kRestricted),
               program.facts);
  EXPECT_EQ(restricted.instance.size(), 2u);
  EXPECT_EQ(restricted.nulls_created, 0u);

  ChaseResult semi =
      RunChase(program.rules, Options(ChaseVariant::kSemiOblivious),
               program.facts);
  EXPECT_EQ(semi.instance.size(), 3u);
  EXPECT_EQ(semi.nulls_created, 1u);
}

TEST(ChaseTest, ObliviousFiresPerFullHomomorphism) {
  // p(X,Y) -> p(X,Z): the oblivious chase fires once per (X,Y) pair, the
  // semi-oblivious once per X.
  ParsedProgram program = MustParse(
      "p(X,Y) -> p(X,Z).\n"
      "p(a,b). p(a,c).\n");
  ChaseOptions oblivious = Options(ChaseVariant::kOblivious);
  oblivious.max_atoms = 50;
  ChaseResult o = RunChase(program.rules, oblivious, program.facts);
  // Every fresh null re-triggers the rule: diverges.
  EXPECT_EQ(o.outcome, ChaseOutcome::kResourceLimit);

  ChaseResult so = RunChase(
      program.rules, Options(ChaseVariant::kSemiOblivious), program.facts);
  EXPECT_EQ(so.outcome, ChaseOutcome::kTerminated);
  // One trigger for X=a (frontier dedup): p(a,b), p(a,c), p(a,z).
  EXPECT_EQ(so.instance.size(), 3u);
  EXPECT_EQ(so.applied_triggers, 1u);
}

TEST(ChaseTest, UniversalModelAnswersQueries) {
  ParsedProgram program = MustParse(
      "person(X) -> hasFather(X,Y), person(Y).\n"
      "person(bob).\n");
  ChaseOptions options = Options(ChaseVariant::kRestricted);
  options.max_atoms = 100;
  ChaseResult result = RunChase(program.rules, options, program.facts);

  Vocabulary& vocab = program.vocabulary;
  StatusOr<ParsedQuery> query = ParseQuery("hasFather(X,Y)", &vocab);
  ASSERT_TRUE(query.ok());
  ConjunctiveQuery cq;
  cq.atoms = query->atoms;
  cq.num_variables = static_cast<uint32_t>(query->variable_names.size());
  cq.answer_variables = {0};
  std::set<AnswerTuple> certain = CertainAnswers(result.instance, cq);
  // The only null-free answer for X is bob.
  ASSERT_EQ(certain.size(), 1u);
  Term bob = Term::Constant(*vocab.constants.Find("bob"));
  EXPECT_EQ((*certain.begin())[0], bob);
}

TEST(ChaseTest, ProvenanceTracksGuardsAndDepth) {
  ParsedProgram program = MustParse(
      "p(X) -> q(X,Y).\n"
      "q(X,Y) -> p(Y).\n"
      "p(a).\n");
  ChaseOptions options = Options(ChaseVariant::kSemiOblivious);
  options.max_atoms = 20;
  options.track_provenance = true;
  ChaseRun run(program.rules, options, program.facts);
  ChaseOutcome outcome = run.Execute();
  EXPECT_EQ(outcome, ChaseOutcome::kResourceLimit);
  ASSERT_EQ(run.provenance().size(), run.instance().size());
  // Database atom: no rule; derived atoms: increasing depth along chain.
  EXPECT_EQ(run.provenance()[0].rule, kNoRule);
  EXPECT_EQ(run.provenance()[0].depth, 0u);
  for (AtomId id = 1; id < run.instance().size(); ++id) {
    const AtomProvenance& prov = run.provenance()[id];
    EXPECT_NE(prov.rule, kNoRule);
    ASSERT_LT(prov.parent, id);
    EXPECT_EQ(prov.depth, run.provenance()[prov.parent].depth + 1);
  }
}

TEST(ChaseTest, ResultContainsDatabase) {
  ParsedProgram program = MustParse(
      "p(X) -> q(X).\n"
      "p(a). p(b). q(c).\n");
  ChaseResult result = RunChase(
      program.rules, Options(ChaseVariant::kRestricted), program.facts);
  EXPECT_EQ(result.outcome, ChaseOutcome::kTerminated);
  for (const Atom& fact : program.facts) {
    EXPECT_TRUE(result.instance.Contains(fact));
  }
  EXPECT_EQ(result.instance.size(), 5u);  // + q(a), q(b)
}

TEST(ChaseTest, FairnessDrivesInterleavedRules) {
  // Two independent generators; fairness means both make progress even
  // under a tight cap. (Oblivious: each fresh null is a fresh trigger.)
  ParsedProgram program = MustParse(
      "p(X) -> p(Y).\n"
      "q(X) -> q(Y).\n"
      "p(a). q(a).\n");
  ChaseOptions options = Options(ChaseVariant::kOblivious);
  options.max_atoms = 30;
  ChaseResult result = RunChase(program.rules, options, program.facts);
  EXPECT_EQ(result.outcome, ChaseOutcome::kResourceLimit);
  uint32_t p_atoms = 0;
  uint32_t q_atoms = 0;
  for (AtomView atom : result.instance.atoms()) {
    if (atom.predicate == 0) ++p_atoms;
    if (atom.predicate == 1) ++q_atoms;
  }
  EXPECT_GT(p_atoms, 5u);
  EXPECT_GT(q_atoms, 5u);
}

}  // namespace
}  // namespace gchase
