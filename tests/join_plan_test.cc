// Tests for the compiled discovery join plans (chase/join_plan.{h,cc} +
// chase/plan_executor.{h,cc}): plan compilation and plannability rules,
// the depth-zero order choice, BindingSegment budget mechanics, and —
// the core contract — bit-identity of plan-on against plan-off runs
// across the variant x order grid, discovery-cap sweeps (including exact
// join-work accounting parity), fault-injection abort points, and
// parallel thread counts.

#include "chase/join_plan.h"

#include <string>

#include "base/memory_budget.h"
#include "chase/chase.h"
#include "chase/plan_executor.h"
#include "gtest/gtest.h"
#include "storage/instance.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

// -------------------------------------------------------------------------
// Plan compilation.

TEST(JoinPlanTest, CompilesOneAndTwoConjunctBodies) {
  ParsedProgram program = MustParse(
      "p(X) -> q(X).\n"
      "e(X,Y), e(Y,Z) -> e(X,Z).\n"
      "a(X,Y), b(Y,Z), c(Z,W) -> d(X,W).\n");
  JoinPlanSet plans = JoinPlanSet::Compile(program.rules);
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans.plannable_rules(), 2u);

  const RuleJoinPlan& unary = plans.plan(0);
  ASSERT_TRUE(unary.plannable);
  EXPECT_EQ(unary.body_size, 1u);
  ASSERT_EQ(unary.orders.size(), 1u);
  ASSERT_EQ(unary.orders[0].size(), 1u);
  EXPECT_EQ(unary.orders[0][0].conjunct, 0u);

  const RuleJoinPlan& closure = plans.plan(1);
  ASSERT_TRUE(closure.plannable);
  EXPECT_EQ(closure.body_size, 2u);
  ASSERT_EQ(closure.orders.size(), 2u);
  // Order starting at conjunct 0: step 1 matches conjunct 1 with its
  // first position (the shared variable Y) as the one probe site.
  const std::vector<PlanStep>& order0 = closure.orders[0];
  ASSERT_EQ(order0.size(), 2u);
  EXPECT_EQ(order0[0].conjunct, 0u);
  EXPECT_EQ(order0[1].conjunct, 1u);
  ASSERT_EQ(order0[1].probes.size(), 1u);
  EXPECT_EQ(order0[1].probes[0].position, 0u);
  EXPECT_FALSE(order0[1].probes[0].is_constant);
  // In that step, position 0 checks the bound Y and position 1 binds Z.
  ASSERT_EQ(order0[1].ops.size(), 2u);
  EXPECT_EQ(order0[1].ops[0].kind, PlanOp::Kind::kCheckVar);
  EXPECT_EQ(order0[1].ops[1].kind, PlanOp::Kind::kBindVar);

  const RuleJoinPlan& wide = plans.plan(2);
  EXPECT_FALSE(wide.plannable);
  EXPECT_STREQ(wide.fallback_reason, "body-too-wide");
}

TEST(JoinPlanTest, ConstantsBecomeChecksAndProbeSites) {
  ParsedProgram program = MustParse("p(c,X) -> q(X).\n");
  JoinPlanSet plans = JoinPlanSet::Compile(program.rules);
  const RuleJoinPlan& plan = plans.plan(0);
  ASSERT_TRUE(plan.plannable);
  const PlanStep& step = plan.orders[0][0];
  ASSERT_EQ(step.ops.size(), 2u);
  EXPECT_EQ(step.ops[0].kind, PlanOp::Kind::kCheckConst);
  EXPECT_EQ(step.ops[1].kind, PlanOp::Kind::kBindVar);
  // The constant is a seed probe site (usable under the empty binding).
  ASSERT_EQ(plan.seeds.size(), 1u);
  ASSERT_EQ(plan.seeds[0].const_probes.size(), 1u);
  EXPECT_EQ(plan.seeds[0].const_probes[0].position, 0u);
}

TEST(JoinPlanTest, RepeatedVariableChecksWithoutProbing) {
  // The second occurrence of X within one conjunct checks but is not a
  // probe site (unbound at planning time), matching the backtracking
  // engine's per-node planner.
  ParsedProgram program = MustParse("e(X,X) -> q(X).\n");
  JoinPlanSet plans = JoinPlanSet::Compile(program.rules);
  const PlanStep& step = plans.plan(0).orders[0][0];
  ASSERT_EQ(step.ops.size(), 2u);
  EXPECT_EQ(step.ops[0].kind, PlanOp::Kind::kBindVar);
  EXPECT_EQ(step.ops[1].kind, PlanOp::Kind::kCheckVar);
  EXPECT_TRUE(step.probes.empty());
}

TEST(JoinPlanTest, ChooseFirstConjunctPrefersSmallerRelation) {
  ParsedProgram program = MustParse(
      "big(X,Y), small(Y,Z) -> out(X,Z).\n"
      "big(a,b). big(b,c). big(c,d). small(d,e).\n");
  Instance instance;
  for (const Atom& atom : program.facts) instance.Insert(atom);
  JoinPlanSet plans = JoinPlanSet::Compile(program.rules);
  EXPECT_EQ(ChooseFirstConjunct(instance, plans.plan(0)), 1u);
}

TEST(JoinPlanTest, ChooseFirstConjunctTiesToLowerIndex) {
  ParsedProgram program = MustParse(
      "p(X,Y), q(Y,Z) -> out(X,Z).\n"
      "p(a,b). q(b,c).\n");
  Instance instance;
  for (const Atom& atom : program.facts) instance.Insert(atom);
  JoinPlanSet plans = JoinPlanSet::Compile(program.rules);
  // Both relations have one atom: the tie goes to conjunct 0, exactly as
  // the backtracking engine's strict-< argmin keeps the first plan.
  EXPECT_EQ(ChooseFirstConjunct(instance, plans.plan(0)), 0u);
}

// -------------------------------------------------------------------------
// BindingSegment budget mechanics (the HeadBlock ratchet contract).

TEST(BindingSegmentTest, ChargesCapacityGrowthAndReleasesOnDetach) {
  MemoryBudget budget(0);  // unlimited, but tracks charges
  {
    BindingSegment segment;
    segment.SetMemoryBudget(&budget);
    segment.SetWidth(2);
    const Term row[] = {Term::Constant(1), Term::Constant(2)};
    for (int i = 0; i < 100; ++i) segment.AppendRow(row);
    EXPECT_EQ(segment.rows(), 100u);
    EXPECT_EQ(budget.in_use_bytes(), segment.capacity_bytes());
    // Clear keeps capacity, so the charge stays (high-water ratchet).
    segment.Clear();
    EXPECT_EQ(budget.in_use_bytes(), segment.capacity_bytes());
  }
  // Destruction releases the full charge.
  EXPECT_EQ(budget.in_use_bytes(), 0u);
}

TEST(BindingSegmentTest, RowsRoundTrip) {
  BindingSegment segment;
  segment.SetWidth(3);
  const Term a[] = {Term::Constant(1), UnboundTerm(), Term::Constant(3)};
  const Term b[] = {Term::Constant(4), Term::Constant(5), UnboundTerm()};
  segment.AppendRow(a);
  segment.AppendRow(b);
  ASSERT_EQ(segment.rows(), 2u);
  EXPECT_EQ(segment.row(0)[0], Term::Constant(1));
  EXPECT_EQ(segment.row(0)[1], UnboundTerm());
  EXPECT_EQ(segment.row(1)[1], Term::Constant(5));
}

// -------------------------------------------------------------------------
// Bit-identity: plan-on vs plan-off across variants, orders, caps.

struct TwinRun {
  ChaseOutcome outcome;
  std::vector<Atom> atoms;
  uint64_t applied = 0;
  uint64_t rounds = 0;
  uint64_t nulls = 0;
  uint64_t hom_discoveries = 0;
  uint64_t join_work = 0;
  ChaseStats stats;
};

TwinRun RunTwin(const ParsedProgram& program, ChaseOptions options,
                bool plans) {
  options.join_plans = plans;
  ChaseRun run(program.rules, options, program.facts);
  TwinRun result;
  result.outcome = run.Execute();
  result.atoms = run.instance().MaterializeAtoms();
  result.applied = run.applied_triggers();
  result.rounds = run.rounds();
  result.nulls = run.nulls_created();
  result.hom_discoveries = run.hom_discoveries();
  result.join_work = run.join_work();
  result.stats = run.stats();
  return result;
}

/// Asserts full bit-identity of a plan-on run against its plan-off twin.
/// Unlike apply-path twinning, join_work is asserted *equal*: the plan
/// executor charges exactly the candidate visits the backtracking search
/// performs, so work accounting is part of the contract here.
void ExpectTwinsIdentical(const ParsedProgram& program,
                          const ChaseOptions& options,
                          const std::string& context) {
  TwinRun planned = RunTwin(program, options, true);
  TwinRun legacy = RunTwin(program, options, false);
  EXPECT_EQ(planned.outcome, legacy.outcome) << context;
  EXPECT_EQ(planned.applied, legacy.applied) << context;
  EXPECT_EQ(planned.rounds, legacy.rounds) << context;
  EXPECT_EQ(planned.nulls, legacy.nulls) << context;
  EXPECT_EQ(planned.hom_discoveries, legacy.hom_discoveries) << context;
  EXPECT_EQ(planned.join_work, legacy.join_work) << context;
  ASSERT_EQ(planned.atoms.size(), legacy.atoms.size()) << context;
  for (std::size_t i = 0; i < planned.atoms.size(); ++i) {
    ASSERT_TRUE(planned.atoms[i] == legacy.atoms[i])
        << context << " atom " << i;
  }
  ASSERT_EQ(planned.stats.per_rule.size(), legacy.stats.per_rule.size())
      << context;
  for (std::size_t r = 0; r < planned.stats.per_rule.size(); ++r) {
    EXPECT_EQ(planned.stats.per_rule[r].discovered,
              legacy.stats.per_rule[r].discovered)
        << context << " rule " << r;
    EXPECT_EQ(planned.stats.per_rule[r].applied,
              legacy.stats.per_rule[r].applied)
        << context << " rule " << r;
    EXPECT_EQ(planned.stats.per_rule[r].skipped_satisfied,
              legacy.stats.per_rule[r].skipped_satisfied)
        << context << " rule " << r;
    // Plan activity is strictly a plan-on phenomenon.
    EXPECT_EQ(legacy.stats.per_rule[r].plan_rotations, 0u)
        << context << " rule " << r;
  }
  ASSERT_EQ(planned.stats.per_round.size(), legacy.stats.per_round.size())
      << context;
  for (std::size_t i = 0; i < planned.stats.per_round.size(); ++i) {
    EXPECT_EQ(planned.stats.per_round[i].candidates,
              legacy.stats.per_round[i].candidates)
        << context << " round " << i;
    EXPECT_EQ(planned.stats.per_round[i].applied,
              legacy.stats.per_round[i].applied)
        << context << " round " << i;
    EXPECT_EQ(legacy.stats.per_round[i].plan_units, 0u)
        << context << " round " << i;
  }
}

/// A workload exercising every plan shape at once: a two-conjunct join
/// (closure), a unary plannable rule with an existential multi-atom head,
/// a constant in a body position, a repeated variable, and a
/// three-conjunct non-plannable rule sharing predicates with the rest.
ParsedProgram MixedWorkload() {
  std::string text =
      "e(X,Y), e(Y,Z) -> e(X,Z).\n"
      "e(X,Y) -> p(X,W), q(W), e(Y,W).\n"
      "p(X,Y), q(Y) -> r(X).\n"
      "e(n0,X) -> s(X).\n"
      "e(X,X) -> loop(X).\n"
      "p(X,A), q(A), r(X) -> t(X).\n";
  for (int i = 0; i < 8; ++i) {
    text += "e(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ").\n";
  }
  return MustParse(text);
}

TEST(JoinPlanTest, BitIdenticalAcrossVariantsAndOrders) {
  ParsedProgram program = MixedWorkload();
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    for (TriggerOrder order :
         {TriggerOrder::kFifo, TriggerOrder::kDatalogFirst,
          TriggerOrder::kRandom}) {
      ChaseOptions options;
      options.variant = variant;
      options.order = order;
      options.order_seed = 0x9e3779b97f4a7c15ull;
      options.max_atoms = 4000;
      options.max_steps = 4000;
      ExpectTwinsIdentical(program, options,
                           std::string(ChaseVariantName(variant)) +
                               "/order=" +
                               std::to_string(static_cast<int>(order)));
    }
  }
}

TEST(JoinPlanTest, BitIdenticalUnderStepCap) {
  ParsedProgram program = MixedWorkload();
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    for (uint64_t cap : {1u, 7u, 23u}) {
      ChaseOptions options;
      options.variant = variant;
      options.max_steps = cap;
      ExpectTwinsIdentical(program, options,
                           std::string(ChaseVariantName(variant)) +
                               "/max_steps=" + std::to_string(cap));
    }
  }
}

TEST(JoinPlanTest, BitIdenticalUnderHomDiscoveryCap) {
  ParsedProgram program = MixedWorkload();
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    for (uint64_t cap : {1u, 9u, 40u, 150u}) {
      ChaseOptions options;
      options.variant = variant;
      options.max_hom_discoveries = cap;
      options.max_atoms = 4000;
      options.max_steps = 4000;
      ExpectTwinsIdentical(program, options,
                           std::string(ChaseVariantName(variant)) +
                               "/max_homs=" + std::to_string(cap));
    }
  }
}

TEST(JoinPlanTest, BitIdenticalUnderJoinWorkCap) {
  // The cap that makes visit-accounting parity observable: a plan run
  // that charged even one visit more or less than the backtracking
  // search would trip the cap on a different round and diverge.
  ParsedProgram program = MixedWorkload();
  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious,
        ChaseVariant::kRestricted}) {
    for (uint64_t cap : {1u, 30u, 111u, 500u, 2000u}) {
      ChaseOptions options;
      options.variant = variant;
      options.max_join_work = cap;
      options.max_atoms = 4000;
      options.max_steps = 4000;
      ExpectTwinsIdentical(program, options,
                           std::string(ChaseVariantName(variant)) +
                               "/max_join_work=" + std::to_string(cap));
    }
  }
}

TEST(JoinPlanTest, BitIdenticalAcrossThreadCounts) {
  // Plan-on parallel rounds must agree with plan-on serial rounds and —
  // transitively — with the legacy serial engine. Cutover 0 forces the
  // pool on so small rounds exercise the parallel merge too.
  ParsedProgram program = MixedWorkload();
  ChaseOptions base;
  base.max_atoms = 4000;
  base.max_steps = 4000;
  base.parallel_cutover_work = 0;
  TwinRun serial = RunTwin(program, base, true);
  for (uint32_t threads : {2u, 4u}) {
    ChaseOptions options = base;
    options.discovery_threads = threads;
    TwinRun parallel = RunTwin(program, options, true);
    EXPECT_EQ(parallel.outcome, serial.outcome) << threads;
    EXPECT_EQ(parallel.applied, serial.applied) << threads;
    EXPECT_EQ(parallel.hom_discoveries, serial.hom_discoveries) << threads;
    EXPECT_EQ(parallel.join_work, serial.join_work) << threads;
    ASSERT_EQ(parallel.atoms.size(), serial.atoms.size()) << threads;
    for (std::size_t i = 0; i < parallel.atoms.size(); ++i) {
      ASSERT_TRUE(parallel.atoms[i] == serial.atoms[i])
          << threads << " atom " << i;
    }
    ExpectTwinsIdentical(program, options,
                         "threads=" + std::to_string(threads));
  }
}

// -------------------------------------------------------------------------
// Fault-injection abort points: a plan-on run must stop with the same
// outcome and the same instance as plan-off at every deterministic abort.
// Counters accrued mid-discovery (hom_discoveries) may legitimately
// differ on aborted rounds — collect-then-merge engines discard pending
// work wholesale — so they are not compared here, mirroring the
// parallel-discovery contract.

void ExpectAbortTwinsAgree(const ParsedProgram& program, ChaseOptions options,
                           const std::string& context) {
  TwinRun planned = RunTwin(program, options, true);
  TwinRun legacy = RunTwin(program, options, false);
  EXPECT_EQ(planned.outcome, legacy.outcome) << context;
  EXPECT_EQ(planned.applied, legacy.applied) << context;
  ASSERT_EQ(planned.atoms.size(), legacy.atoms.size()) << context;
  for (std::size_t i = 0; i < planned.atoms.size(); ++i) {
    ASSERT_TRUE(planned.atoms[i] == legacy.atoms[i])
        << context << " atom " << i;
  }
}

TEST(JoinPlanTest, FaultAtDiscoveryUnitAbortsIdentically) {
  ParsedProgram program = MixedWorkload();
  for (uint64_t ordinal : {0u, 3u, 7u}) {
    ChaseOptions options;
    options.max_atoms = 4000;
    options.max_steps = 4000;
    options.fault_injector = [ordinal](FaultSite site, uint64_t o) {
      return site == FaultSite::kDiscovery && o == ordinal
                 ? InjectedFault::kCancel
                 : InjectedFault::kNone;
    };
    ExpectAbortTwinsAgree(program, options,
                          "discovery-ordinal=" + std::to_string(ordinal));
  }
}

TEST(JoinPlanTest, FaultAtRoundStartAbortsIdentically) {
  ParsedProgram program = MixedWorkload();
  for (uint64_t round : {0u, 1u, 2u}) {
    ChaseOptions options;
    options.max_atoms = 4000;
    options.max_steps = 4000;
    options.fault_injector = [round](FaultSite site, uint64_t o) {
      return site == FaultSite::kRoundStart && o == round
                 ? InjectedFault::kDeadline
                 : InjectedFault::kNone;
    };
    // Round boundaries are outside the discovery phase: full bit-identity
    // holds there, counters included.
    ExpectTwinsIdentical(program, options,
                         "round-start=" + std::to_string(round));
  }
}

TEST(JoinPlanTest, FaultAtTriggerApplyAbortsIdentically) {
  ParsedProgram program = MixedWorkload();
  for (uint64_t ordinal : {0u, 2u, 9u}) {
    ChaseOptions options;
    options.max_atoms = 4000;
    options.max_steps = 4000;
    options.fault_injector = [ordinal](FaultSite site, uint64_t o) {
      return site == FaultSite::kTriggerApply && o == ordinal
                 ? InjectedFault::kResourceLimit
                 : InjectedFault::kNone;
    };
    // Apply-phase aborts happen after discovery merged completely: full
    // bit-identity, counters included.
    ExpectTwinsIdentical(program, options,
                         "trigger-apply=" + std::to_string(ordinal));
  }
}

// -------------------------------------------------------------------------
// Plan stats surface.

TEST(JoinPlanTest, StatsReportPlanActivity) {
  ParsedProgram program = MixedWorkload();
  ChaseOptions options;
  options.max_atoms = 4000;
  options.max_steps = 4000;

  TwinRun planned = RunTwin(program, options, true);
  EXPECT_EQ(planned.stats.plannable_rules, 5u);
  uint64_t plan_units = 0, fallback_units = 0, binding_rows = 0;
  for (const RoundStats& round : planned.stats.per_round) {
    plan_units += round.plan_units;
    fallback_units += round.fallback_units;
    binding_rows += round.binding_rows;
  }
  EXPECT_GT(plan_units, 0u);
  // The three-conjunct rule keeps the backtracking path busy every round.
  EXPECT_GT(fallback_units, 0u);
  EXPECT_GT(binding_rows, 0u);
  // The closure rule executed plans and recorded its chosen order.
  EXPECT_GT(planned.stats.per_rule[0].plan_rotations, 0u);
  EXPECT_EQ(planned.stats.per_rule[0].plan_order.size(), 2u);
  // The non-plannable rule never rotated.
  EXPECT_EQ(planned.stats.per_rule[5].plan_rotations, 0u);
  EXPECT_TRUE(planned.stats.per_rule[5].plan_order.empty());

  TwinRun legacy = RunTwin(program, options, false);
  // Plannability is reported either way; execution counters are zero off.
  EXPECT_EQ(legacy.stats.plannable_rules, 5u);
  for (const RoundStats& round : legacy.stats.per_round) {
    EXPECT_EQ(round.plan_units, 0u);
    EXPECT_EQ(round.binding_rows, 0u);
  }
}

// -------------------------------------------------------------------------
// Direct executor check: enumeration order is the id-lexicographic order
// the backtracking search produces, including semi-naive range clipping.

TEST(PlanExecutorTest, EnumeratesInIdLexOrderWithDeltaPivot) {
  ParsedProgram program = MustParse(
      "e(X,Y), e(Y,Z) -> e(X,Z).\n"
      "e(a,b). e(b,c). e(c,d).\n");
  Instance instance;
  for (const Atom& atom : program.facts) instance.Insert(atom);
  JoinPlanSet plans = JoinPlanSet::Compile(program.rules);
  const RuleJoinPlan& plan = plans.plan(0);
  PlanExecutor executor(instance);
  BindingSegment scratch, out;

  // Watermark 0: everything is delta. Pivot 0 with the kDeltaOnly/kAll
  // split enumerates both chain joins (a,b,c) and (b,c,d) in id order.
  const uint64_t kUnlimited = std::numeric_limits<uint64_t>::max();
  PlanExecutor::UnitStatus status =
      executor.ExecuteUnit(plan, /*pivot=*/0,
                           ChooseFirstConjunct(instance, plan),
                           /*watermark=*/0, kUnlimited, kUnlimited,
                           /*governor=*/nullptr, &scratch, &out);
  EXPECT_FALSE(status.budget_exhausted);
  ASSERT_EQ(status.rows, 2u);
  ASSERT_EQ(out.rows(), 2u);
  // Row 0 is the (a,b,c) join: X=a, Y=b, Z=c in slot order.
  EXPECT_EQ(out.row(0)[plan.orders[0][0].ops[0].slot],
            instance.atom(0).args[0]);

  // Pivot 1 with watermark past the whole instance: empty delta, no rows,
  // and the charge reflects the visits a backtracking search would spend
  // discovering that (it scans the unclipped chosen list).
  BindingSegment out2;
  status = executor.ExecuteUnit(plan, /*pivot=*/1,
                                ChooseFirstConjunct(instance, plan),
                                /*watermark=*/instance.size(), kUnlimited,
                                kUnlimited, nullptr, &scratch, &out2);
  EXPECT_EQ(out2.rows(), 0u);
  EXPECT_GT(status.charge, 0u);
}

}  // namespace
}  // namespace gchase
