// Replays every checked-in fuzz repro against the oracle recorded in its
// metadata. The corpus is a regression suite: each entry once violated
// (or exercised a fix for) an oracle, so a reappearing bug flips the
// replay from pass to violation. chase_fuzz writes new entries with
// --corpus-dir=tests/fuzz_corpus; see docs/fuzzing.md.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"
#include "fuzz/oracles.h"
#include "gtest/gtest.h"

#ifndef GCHASE_CORPUS_DIR
#error "build must define GCHASE_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace gchase {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(GCHASE_CORPUS_DIR)) {
    if (entry.path().extension() == ".dlgp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FuzzCorpusTest, CorpusIsNonTrivial) {
  EXPECT_GE(CorpusFiles().size(), 3u);
}

TEST(FuzzCorpusTest, EveryEntryParsesAndNamesAnOracle) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    StatusOr<FuzzCase> repro = ParseRepro(ReadFile(path));
    ASSERT_TRUE(repro.ok()) << repro.status().ToString();
    EXPECT_FALSE(repro->rules.empty());
    ASSERT_FALSE(repro->oracle.empty());
    EXPECT_TRUE(OracleByName(repro->oracle).has_value()) << repro->oracle;
  }
}

TEST(FuzzCorpusTest, EveryEntryReplaysClean) {
  for (const std::filesystem::path& path : CorpusFiles()) {
    SCOPED_TRACE(path.filename().string());
    StatusOr<FuzzCase> repro = ParseRepro(ReadFile(path));
    ASSERT_TRUE(repro.ok()) << repro.status().ToString();
    std::optional<OracleId> oracle = OracleByName(repro->oracle);
    ASSERT_TRUE(oracle.has_value()) << repro->oracle;
    OracleResult result = RunOracle(*oracle, *repro);
    EXPECT_NE(result.outcome, OracleOutcome::kViolation)
        << repro->oracle << ": " << result.detail;
  }
}

}  // namespace
}  // namespace gchase
