#ifndef GCHASE_TESTS_TEST_UTIL_H_
#define GCHASE_TESTS_TEST_UTIL_H_

#include <string_view>

#include "gtest/gtest.h"
#include "model/parser.h"

namespace gchase {

/// Parses `text` or fails the current test.
inline ParsedProgram MustParse(std::string_view text) {
  StatusOr<ParsedProgram> parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return *std::move(parsed);
}

}  // namespace gchase

#endif  // GCHASE_TESTS_TEST_UTIL_H_
