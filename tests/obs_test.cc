// Tests for the observability subsystem (src/obs): the tracing core's
// invariants (span nesting, category filtering, bounded buffers that
// drop rather than corrupt), the Chrome-trace exporter's output shape,
// the metrics registry, and the governor contract — an aborted run still
// flushes everything it recorded. The concurrent test is also a TSan
// target (see .github/workflows/ci.yml): eight workers record into the
// tracer while the main thread collects.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "chase/chase.h"
#include "gtest/gtest.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

Tracer::Config ConfigFor(uint32_t categories,
                         std::size_t capacity = std::size_t{1} << 14) {
  Tracer::Config config;
  config.categories = categories;
  config.buffer_capacity = capacity;
  return config;
}

/// All collected events flattened, in per-thread order.
std::vector<TraceEvent> AllEvents() {
  std::vector<TraceEvent> out;
  for (const Tracer::ThreadEvents& thread : Tracer::Global().Collect()) {
    out.insert(out.end(), thread.events.begin(), thread.events.end());
  }
  return out;
}

/// Walks one thread's events checking stack discipline: every 'E' closes
/// the innermost open 'B' of the same name, timestamps never decrease,
/// and no span is left open. Returns false (and fails the test) on any
/// violation.
void ExpectBalanced(const Tracer::ThreadEvents& thread) {
  std::vector<const char*> stack;
  uint64_t last_ts = 0;
  for (const TraceEvent& event : thread.events) {
    EXPECT_GE(event.ts_ns, last_ts) << "timestamps must be non-decreasing";
    last_ts = event.ts_ns;
    switch (event.phase) {
      case TracePhase::kBegin:
        stack.push_back(event.name);
        break;
      case TracePhase::kEnd:
        ASSERT_FALSE(stack.empty()) << "E without matching B: " << event.name;
        EXPECT_STREQ(stack.back(), event.name);
        stack.pop_back();
        break;
      case TracePhase::kInstant:
      case TracePhase::kComplete:
        break;
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed spans remain";
}

// -------------------------------------------------------------------------
// Category parsing.

TEST(TraceCategoryTest, ParseSingleAndList) {
  bool ok = false;
  EXPECT_EQ(ParseTraceCategories("chase", &ok),
            static_cast<uint32_t>(TraceCategory::kChase));
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseTraceCategories("chase,pool,decider", &ok),
            (static_cast<uint32_t>(TraceCategory::kChase) |
             static_cast<uint32_t>(TraceCategory::kPool) |
             static_cast<uint32_t>(TraceCategory::kDecider)));
  EXPECT_TRUE(ok);
}

TEST(TraceCategoryTest, EmptyListMeansEverything) {
  bool ok = false;
  EXPECT_EQ(ParseTraceCategories("", &ok), kAllTraceCategories);
  EXPECT_TRUE(ok);
}

TEST(TraceCategoryTest, UnknownNameFails) {
  bool ok = true;
  EXPECT_EQ(ParseTraceCategories("chase,bogus", &ok), 0u);
  EXPECT_FALSE(ok);
}

TEST(TraceCategoryTest, NamesRoundTrip) {
  for (TraceCategory category :
       {TraceCategory::kChase, TraceCategory::kPool, TraceCategory::kDecider,
        TraceCategory::kStorage, TraceCategory::kFuzz}) {
    bool ok = false;
    EXPECT_EQ(ParseTraceCategories(TraceCategoryName(category), &ok),
              static_cast<uint32_t>(category));
    EXPECT_TRUE(ok);
  }
}

// -------------------------------------------------------------------------
// Tracing core.

TEST(TracerTest, SpansNestAndOrder) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "outer", 1);
    {
      GCHASE_TRACE_SPAN(TraceCategory::kChase, "inner", 2);
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "tick", 3);
    }
  }
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(events[0].arg, 1u);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, TracePhase::kBegin);
  EXPECT_STREQ(events[2].name, "tick");
  EXPECT_EQ(events[2].phase, TracePhase::kInstant);
  EXPECT_STREQ(events[3].name, "inner");
  EXPECT_EQ(events[3].phase, TracePhase::kEnd);
  EXPECT_STREQ(events[4].name, "outer");
  EXPECT_EQ(events[4].phase, TracePhase::kEnd);
  for (const Tracer::ThreadEvents& thread : tracer.Collect()) {
    ExpectBalanced(thread);
  }
}

TEST(TracerTest, CategoryFilteringDropsDisabledCategories) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(static_cast<uint32_t>(TraceCategory::kChase)));
  EXPECT_TRUE(tracer.enabled(TraceCategory::kChase));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kPool));
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "kept");
    GCHASE_TRACE_SPAN(TraceCategory::kPool, "filtered");
    GCHASE_TRACE_INSTANT(TraceCategory::kStorage, "filtered_too", 0);
  }
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "kept");
  EXPECT_STREQ(events[1].name, "kept");
  // Filtering is not dropping: nothing was lost, nothing is counted.
  EXPECT_EQ(tracer.TotalDropped(), 0u);
}

TEST(TracerTest, SessionRestartDiscardsOldEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  GCHASE_TRACE_INSTANT(TraceCategory::kChase, "first_session", 0);
  tracer.Start(ConfigFor(kAllTraceCategories));
  GCHASE_TRACE_INSTANT(TraceCategory::kChase, "second_session", 0);
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second_session");
}

TEST(TracerTest, OverflowDropsAndCountsWithoutCorruption) {
  Tracer& tracer = Tracer::Global();
  constexpr std::size_t kCapacity = 8;
  tracer.Start(ConfigFor(kAllTraceCategories, kCapacity));
  for (int i = 0; i < 100; ++i) {
    GCHASE_TRACE_INSTANT(TraceCategory::kChase, "flood", i);
  }
  tracer.Stop();

  std::vector<Tracer::ThreadEvents> threads = tracer.Collect();
  ASSERT_EQ(threads.size(), 1u);
  // Exactly the first kCapacity events made it; the rest were counted.
  EXPECT_EQ(threads[0].events.size(), kCapacity);
  EXPECT_EQ(threads[0].dropped, 100u - kCapacity);
  EXPECT_EQ(tracer.TotalDropped(), 100u - kCapacity);
  for (std::size_t i = 0; i < threads[0].events.size(); ++i) {
    EXPECT_STREQ(threads[0].events[i].name, "flood");
    EXPECT_EQ(threads[0].events[i].arg, i);
  }
}

TEST(TracerTest, SaturatedSpansStillClose) {
  Tracer& tracer = Tracer::Global();
  constexpr std::size_t kCapacity = 4;
  tracer.Start(ConfigFor(kAllTraceCategories, kCapacity));
  // Open a span, saturate the buffer, then open more spans (dropped) and
  // close everything. The reserved end slack guarantees the recorded
  // span's end still lands, so the trace stays balanced.
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "recorded_span");
    for (int i = 0; i < 50; ++i) {
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "filler", i);
    }
    {
      GCHASE_TRACE_SPAN(TraceCategory::kChase, "dropped_span");
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "more", 0);
    }
  }
  tracer.Stop();

  std::vector<Tracer::ThreadEvents> threads = tracer.Collect();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_GT(threads[0].dropped, 0u);
  ExpectBalanced(threads[0]);
  // The outer span both began and ended despite saturation in between.
  uint64_t begins = 0;
  uint64_t ends = 0;
  for (const TraceEvent& event : threads[0].events) {
    if (std::string(event.name) != "recorded_span") continue;
    if (event.phase == TracePhase::kBegin) ++begins;
    if (event.phase == TracePhase::kEnd) ++ends;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(TracerTest, CompleteEventsAreThresholdGated) {
  Tracer& tracer = Tracer::Global();
  Tracer::Config config = ConfigFor(kAllTraceCategories);
  config.complete_threshold_ns = 1000;
  tracer.Start(config);
  tracer.RecordComplete(TraceCategory::kChase, "fast", 0, 999, 1);
  tracer.RecordComplete(TraceCategory::kChase, "slow", 0, 1001, 2);
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "slow");
  EXPECT_EQ(events[0].phase, TracePhase::kComplete);
  EXPECT_EQ(events[0].dur_ns, 1001u);
}

TEST(TracerTest, DisabledTracerRecordsNothingAndAllocatesNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  tracer.Stop();  // fresh empty session, then disabled

  const uint64_t buffers_before = tracer.buffers_created();
  for (int i = 0; i < 1000; ++i) {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "noop", i);
    GCHASE_TRACE_INSTANT(TraceCategory::kPool, "noop_instant", i);
  }
  // No category enabled: no events stored, no buffer ever allocated —
  // the instrumentation cost was one relaxed load per site.
  EXPECT_EQ(tracer.buffers_created(), buffers_before);
  EXPECT_TRUE(AllEvents().empty());
  EXPECT_EQ(tracer.TotalDropped(), 0u);
}

// Eight workers record spans and instants concurrently while the main
// thread collects mid-flight; run under TSan in CI. Single-writer
// buffers with release-publication make this race-free by construction.
TEST(TracerTest, ConcurrentRecordingFromPoolWorkers) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  std::atomic<uint64_t> work{0};
  {
    ThreadPool pool(8);
    pool.ParallelFor(256, [&work](uint64_t i) {
      GCHASE_TRACE_SPAN(TraceCategory::kChase, "unit", i);
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "unit_tick", i);
      work.fetch_add(i, std::memory_order_relaxed);
      if (i == 128) {
        // Concurrent collection: readers only see published prefixes.
        (void)Tracer::Global().Collect();
      }
    });
  }
  tracer.Stop();
  EXPECT_EQ(work.load(), uint64_t{256} * 255 / 2);

  uint64_t units = 0;
  for (const Tracer::ThreadEvents& thread : tracer.Collect()) {
    ExpectBalanced(thread);
    for (const TraceEvent& event : thread.events) {
      if (std::string(event.name) == "unit" &&
          event.phase == TracePhase::kBegin) {
        ++units;
      }
    }
  }
  // Every unit recorded exactly once, whichever worker ran it (the pool
  // instrumentation contributes pool.* events on top).
  EXPECT_EQ(units, 256u);
}

// -------------------------------------------------------------------------
// Exporter.

TEST(TraceExportTest, ChromeJsonShapeAndBalance) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "export_outer", 7);
    GCHASE_TRACE_INSTANT(TraceCategory::kPool, "export_tick", 9);
  }
  tracer.RecordComplete(TraceCategory::kChase, "export_slow", 0, 1'000'000, 3);
  tracer.Stop();

  const std::string json = TraceToChromeJson(tracer.Collect());
  // Structural sanity without a JSON parser: balanced braces/brackets
  // (no exported string contains either — names are C identifiers) and
  // the required top-level keys. CI's check_trace.py does the real parse.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"chase\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"pool\""), std::string::npos);
  // One B and one E for the span.
  std::size_t begins = 0;
  for (std::size_t pos = json.find("\"ph\": \"B\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"B\"", pos + 1)) {
    ++begins;
  }
  std::size_t ends = 0;
  for (std::size_t pos = json.find("\"ph\": \"E\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"E\"", pos + 1)) {
    ++ends;
  }
  EXPECT_EQ(begins, ends);
}

TEST(TraceExportTest, FlameSummaryAggregatesSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  for (int i = 0; i < 3; ++i) {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "summary_span", i);
  }
  tracer.Stop();

  const std::string summary = TraceFlameSummary(tracer.Collect());
  EXPECT_NE(summary.find("summary_span"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);  // count column
}

TEST(TraceExportTest, SaturatedTraceReportsDrops) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories, 2));
  for (int i = 0; i < 10; ++i) {
    GCHASE_TRACE_INSTANT(TraceCategory::kChase, "drop_me", i);
  }
  tracer.Stop();
  const std::string json = TraceToChromeJson(tracer.Collect());
  EXPECT_NE(json.find("\"dropped_events\": 8"), std::string::npos);
}

// -------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.Counter("test.counter");
  ASSERT_NE(counter, nullptr);
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
  // Find-or-create returns the same instance.
  EXPECT_EQ(registry.Counter("test.counter"), counter);
  EXPECT_EQ(registry.CounterValue("test.counter"), 42u);
  EXPECT_EQ(registry.CounterValue("never.registered"), 0u);

  MetricGauge* gauge = registry.Gauge("test.peak");
  gauge->SetMax(10);
  gauge->SetMax(5);  // lower value must not win
  EXPECT_EQ(gauge->value(), 10);
  gauge->Set(3);  // plain Set always wins
  EXPECT_EQ(gauge->value(), 3);
}

TEST(MetricsTest, SnapshotJsonIsSortedAndIntegral) {
  MetricsRegistry registry;
  registry.Counter("b.second")->Add(2);
  registry.Counter("a.first")->Add(1);
  registry.Gauge("z.gauge")->Set(-7);
  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"a.first\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.second\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"z.gauge\": -7"), std::string::npos);
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsTest, ResetZeroesValuesKeepsRegistrations) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.Counter("test.reset");
  counter->Add(5);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(registry.Counter("test.reset"), counter);
}

TEST(MetricsTest, PublishChaseMetricsExportsParallelFields) {
  ParsedProgram program = MustParse(
      "p(X) -> q(X).\n"
      "q(X) -> r(X).\n"
      "p(a).\n");
  ChaseOptions options;
  ChaseRun run(program.rules, options, program.facts);
  ASSERT_EQ(run.Execute(), ChaseOutcome::kTerminated);

  MetricsRegistry registry;
  PublishChaseMetrics(run.stats(), &registry);
  EXPECT_EQ(registry.CounterValue("chase.runs"), 1u);
  EXPECT_GT(registry.CounterValue("chase.rounds"), 0u);
  EXPECT_GT(registry.CounterValue("chase.triggers_applied"), 0u);
  EXPECT_GT(registry.GaugeValue("chase.peak_atoms"), 0);
  const std::string json = registry.SnapshotJson();
  // The previously-unserialized parallel-discovery fields surface here.
  EXPECT_NE(json.find("\"chase.parallel_rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"chase.estimated_work\""), std::string::npos);
  EXPECT_NE(json.find("\"chase.discovery_threads\""), std::string::npos);
}

// -------------------------------------------------------------------------
// Governor contract: an injected abort still flushes trace and metrics.

TEST(ObsGovernorTest, AbortedChaseStillFlushesTraceAndMetrics) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));

  ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  options.fault_injector = [](FaultSite site, uint64_t ordinal) {
    return site == FaultSite::kTriggerApply && ordinal == 3
               ? InjectedFault::kCancel
               : InjectedFault::kNone;
  };
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kCancelled);
  tracer.Stop();

  // Everything recorded before the abort is collectable and balanced —
  // the cooperative stop unwound every open span on its way out.
  bool saw_chase_round = false;
  for (const Tracer::ThreadEvents& thread : tracer.Collect()) {
    ExpectBalanced(thread);
    for (const TraceEvent& event : thread.events) {
      if (std::string(event.name) == "chase.round") saw_chase_round = true;
    }
  }
  EXPECT_TRUE(saw_chase_round);

  // The partial stats publish cleanly too.
  MetricsRegistry registry;
  PublishChaseMetrics(run.stats(), &registry);
  EXPECT_EQ(registry.CounterValue("chase.triggers_applied"), 3u);
  EXPECT_NE(registry.SnapshotJson().find("\"chase.rounds\""),
            std::string::npos);
}

// -------------------------------------------------------------------------
// Latency histograms.

TEST(HistogramTest, SmallValuesBucketExactly) {
  // Values below kSubBuckets occupy one bucket each: no quantization.
  for (uint64_t v = 0; v < MetricHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(MetricHistogram::BucketIndex(v), v);
    EXPECT_EQ(MetricHistogram::BucketLowerBound(v), v);
    EXPECT_EQ(MetricHistogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  // Every value lands in a bucket whose [lower, upper] range contains
  // it, and consecutive buckets tile the value space without gaps.
  std::vector<uint64_t> probes;
  for (int shift = 0; shift < 63; ++shift) {
    const uint64_t p = uint64_t{1} << shift;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  std::mt19937_64 rng(7);
  for (int i = 0; i < 1000; ++i) probes.push_back(rng());
  for (uint64_t value : probes) {
    const std::size_t index = MetricHistogram::BucketIndex(value);
    ASSERT_LT(index, MetricHistogram::kNumBuckets) << "value " << value;
    EXPECT_LE(MetricHistogram::BucketLowerBound(index), value);
    EXPECT_GE(MetricHistogram::BucketUpperBound(index), value);
  }
  for (std::size_t index = 0; index + 1 < MetricHistogram::kNumBuckets;
       ++index) {
    EXPECT_EQ(MetricHistogram::BucketUpperBound(index) + 1,
              MetricHistogram::BucketLowerBound(index + 1))
        << "gap after bucket " << index;
  }
}

TEST(HistogramTest, QuantilesMatchSortedOracle) {
  // Log-normal-ish latencies: the shape latency data actually takes.
  MetricHistogram hist;
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(10.0, 2.0);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = static_cast<uint64_t>(dist(rng));
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(hist.count(), values.size());
  EXPECT_EQ(hist.max(), values.back());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    // Same rank the implementation targets: ceil(q * count), >= 1.
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(values.size()))));
    const uint64_t truth = values[rank - 1];
    const uint64_t reported = hist.ValueAtQuantile(q);
    // Bucket upper bounds make quantiles conservative, never low, and
    // the 16-sub-bucket octaves bound the overshoot at 1/16 relative.
    EXPECT_GE(reported, truth) << "q=" << q;
    EXPECT_LE(reported, truth + truth / 16 + 1) << "q=" << q;
  }
  EXPECT_EQ(hist.ValueAtQuantile(1.0), values.back());
}

TEST(HistogramTest, EmptyAndResetReadAsZero) {
  MetricHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(hist.mean(), 0u);
  hist.Record(1000);
  hist.Record(3000);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.mean(), 2000u);
  EXPECT_EQ(hist.max(), 3000u);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.ValueAtQuantile(0.99), 0u);
}

TEST(HistogramTest, SnapshotJsonObjectShape) {
  MetricHistogram hist;
  for (uint64_t v = 1; v <= 100; ++v) hist.Record(v * 1000);
  const std::string json = hist.SnapshotJsonObject();
  EXPECT_NE(json.find("\"count\": 100"), std::string::npos);
  for (const char* key : {"\"p50\":", "\"p90\":", "\"p99\":", "\"max\":",
                          "\"mean\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// Run under TSan in CI: recording must be race-free from any number of
// threads, and no observation may be lost.
TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  MetricHistogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  const uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(hist.sum(), n * (n - 1) / 2);
  EXPECT_EQ(hist.max(), n - 1);
}

TEST(HistogramTest, LatencyTimerIsInertWhenProfilingOff) {
  const bool was_enabled = ProfilingEnabled();
  MetricHistogram hist;
  SetProfilingEnabled(false);
  { LatencyTimer timer(&hist); }
  EXPECT_EQ(hist.count(), 0u) << "disabled profiling must not record";
  { LatencyTimer null_timer(nullptr); }  // null histogram is always inert

  SetProfilingEnabled(true);
  { LatencyTimer timer(&hist); }
  EXPECT_EQ(hist.count(), 1u);
  SetProfilingEnabled(was_enabled);
}

TEST(HistogramTest, RegistrySnapshotsAndResetsHistograms) {
  MetricsRegistry registry;
  MetricHistogram* hist = registry.Histogram("test.latency_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(registry.Histogram("test.latency_ns"), hist);  // find-or-create
  EXPECT_EQ(registry.FindHistogram("never.registered"), nullptr);
  hist->Record(500);
  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  registry.Reset();
  EXPECT_EQ(hist->count(), 0u);
}

// -------------------------------------------------------------------------
// Perf counters: availability is environment-dependent (CI containers
// usually have no PMU and may block perf_event_open entirely), so these
// tests assert the contract that must hold everywhere — stable snapshot
// shape, graceful degradation, inert-when-disabled — and only check
// live counting when the probe says it works.

TEST(PerfCountersTest, SnapshotAlwaysListsEveryPhase) {
  const std::string json = PerfSnapshotJson();
  EXPECT_NE(json.find("\"available\":"), std::string::npos);
  EXPECT_NE(json.find("\"hardware_events\":"), std::string::npos);
  for (const char* phase :
       {"discovery", "apply", "dedup_growth", "decider", "load"}) {
    EXPECT_NE(json.find(std::string("\"") + phase + "\""), std::string::npos)
        << phase;
  }
  for (const char* key :
       {"\"scopes\":", "\"cycles\":", "\"instructions\":",
        "\"cache_references\":", "\"cache_misses\":", "\"branch_misses\":",
        "\"task_clock_ns\":", "\"ipc\":", "\"cache_miss_rate\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(PerfCountersTest, DisabledScopesAreInert) {
  DisablePerfCounters();
  ResetPerfCounters();
  {
    PerfPhaseScope scope(PerfPhase::kDecider);
  }
  EXPECT_EQ(PerfTotalsForPhase(PerfPhase::kDecider).scopes, 0u);
}

TEST(PerfCountersTest, EnableDegradesGracefullyOrCounts) {
  ResetPerfCounters();
  const bool available = EnablePerfCounters();
  EXPECT_EQ(available, PerfCountersAvailable());
  EXPECT_EQ(available, PerfCountersEnabled());
  if (!available) {
    // The unavailable path must still explain itself and stay inert.
    EXPECT_FALSE(PerfUnavailableReason().empty());
    {
      PerfPhaseScope scope(PerfPhase::kDecider);
    }
    EXPECT_EQ(PerfTotalsForPhase(PerfPhase::kDecider).scopes, 0u);
  } else {
    {
      PerfPhaseScope scope(PerfPhase::kDecider);
      // Burn a little CPU so task-clock has something to see.
      volatile uint64_t sink = 0;
      for (uint64_t i = 0; i < 100000; ++i) sink = sink + i;
    }
    const PerfPhaseTotals totals = PerfTotalsForPhase(PerfPhase::kDecider);
    EXPECT_EQ(totals.scopes, 1u);
    if (PerfHardwareEventsAvailable()) {
      EXPECT_GT(totals.events[kPerfCycles], 0u);
      EXPECT_GT(totals.events[kPerfInstructions], 0u);
    } else {
      // Software fallback: task-clock still attributes on-CPU time and
      // the snapshot says why the hardware columns are zero.
      EXPECT_GT(totals.events[kPerfTaskClockNs], 0u);
      EXPECT_FALSE(PerfUnavailableReason().empty());
      EXPECT_NE(PerfSnapshotJson().find("\"hardware_reason\":"),
                std::string::npos);
    }
    // Untouched phases stay zero.
    EXPECT_EQ(PerfTotalsForPhase(PerfPhase::kLoad).scopes, 0u);
  }
  DisablePerfCounters();
  ResetPerfCounters();
  EXPECT_FALSE(PerfCountersEnabled());
}

// -------------------------------------------------------------------------
// Progress heartbeat.

TEST(ProgressTest, EnabledFlagTracksReporterLifetime) {
  EXPECT_FALSE(ProgressEnabled());
  ProgressReporter reporter;
  ProgressReporter::Options options;
  options.interval_ms = 3600 * 1000;  // never ticks on its own
  ASSERT_TRUE(reporter.Start(options));
  EXPECT_TRUE(ProgressEnabled());
  EXPECT_TRUE(reporter.running());
  reporter.Stop();
  EXPECT_FALSE(ProgressEnabled());
  EXPECT_FALSE(reporter.running());
  // The final flush-on-stop sample always lands, even with no ticks.
  EXPECT_EQ(reporter.samples_emitted(), 1u);
  reporter.Stop();  // idempotent
  EXPECT_EQ(reporter.samples_emitted(), 1u);
}

TEST(ProgressTest, StartFailsOnUnwritableNdjsonPath) {
  ProgressReporter reporter;
  ProgressReporter::Options options;
  options.ndjson_path = "/nonexistent-directory/progress.ndjson";
  EXPECT_FALSE(reporter.Start(options));
  EXPECT_FALSE(reporter.running());
  EXPECT_FALSE(ProgressEnabled());
}

TEST(ProgressTest, NdjsonCarriesCountersAndSamplers) {
  const std::string path =
      testing::TempDir() + "/gchase_progress_test.ndjson";
  GlobalProgress().rounds.store(7, std::memory_order_relaxed);
  GlobalProgress().atoms.store(1234, std::memory_order_relaxed);
  GlobalProgress().triggers.store(55, std::memory_order_relaxed);

  ProgressReporter reporter;
  ProgressReporter::Options options;
  options.mode = ProgressReporter::Mode::kChase;
  options.interval_ms = 3600 * 1000;
  options.ndjson_path = path;
  options.in_use_bytes = [] { return uint64_t{4096}; };
  options.budget_bytes = [] { return uint64_t{8192}; };
  options.remaining_seconds = [] { return 9.5; };
  ASSERT_TRUE(reporter.Start(options));
  reporter.Stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"mode\": \"chase\""), std::string::npos);
  EXPECT_NE(line.find("\"round\": 7"), std::string::npos);
  EXPECT_NE(line.find("\"atoms\": 1234"), std::string::npos);
  EXPECT_NE(line.find("\"triggers\": 55"), std::string::npos);
  EXPECT_NE(line.find("\"in_use_bytes\": 4096"), std::string::npos);
  EXPECT_NE(line.find("\"budget_bytes\": 8192"), std::string::npos);
  EXPECT_NE(line.find("\"remaining_s\": 9.5"), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
            std::count(line.begin(), line.end(), '}'));
  std::remove(path.c_str());
  GlobalProgress().rounds.store(0, std::memory_order_relaxed);
  GlobalProgress().atoms.store(0, std::memory_order_relaxed);
  GlobalProgress().triggers.store(0, std::memory_order_relaxed);
}

TEST(ProgressTest, FuzzModeReportsTrialTallies) {
  const std::string path = testing::TempDir() + "/gchase_fuzz_test.ndjson";
  GlobalProgress().trials_started.store(11, std::memory_order_relaxed);
  GlobalProgress().trials_run.store(10, std::memory_order_relaxed);
  GlobalProgress().trials_failed.store(2, std::memory_order_relaxed);

  ProgressReporter reporter;
  ProgressReporter::Options options;
  options.mode = ProgressReporter::Mode::kFuzz;
  options.interval_ms = 3600 * 1000;
  options.ndjson_path = path;
  ASSERT_TRUE(reporter.Start(options));
  reporter.Stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"mode\": \"fuzz\""), std::string::npos);
  EXPECT_NE(line.find("\"trials_started\": 11"), std::string::npos);
  EXPECT_NE(line.find("\"trials_run\": 10"), std::string::npos);
  EXPECT_NE(line.find("\"trials_failed\": 2"), std::string::npos);
  std::remove(path.c_str());
  GlobalProgress().trials_started.store(0, std::memory_order_relaxed);
  GlobalProgress().trials_run.store(0, std::memory_order_relaxed);
  GlobalProgress().trials_failed.store(0, std::memory_order_relaxed);
}

// Heartbeat ticks happen while work runs; run under TSan in CI against
// concurrent engine-side counter stores.
TEST(ProgressTest, TicksConcurrentlyWithCounterUpdates) {
  ProgressReporter reporter;
  ProgressReporter::Options options;
  options.interval_ms = 1;
  options.ndjson_path = testing::TempDir() + "/gchase_ticks_test.ndjson";
  ASSERT_TRUE(reporter.Start(options));
  for (int i = 0; i < 2000; ++i) {
    if (ProgressEnabled()) {
      GlobalProgress().atoms.fetch_add(1, std::memory_order_relaxed);
      GlobalProgress().rounds.store(static_cast<uint64_t>(i),
                                    std::memory_order_relaxed);
    }
    if (i == 1000) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  reporter.Stop();
  EXPECT_GE(reporter.samples_emitted(), 1u);
  std::remove(options.ndjson_path.c_str());
  GlobalProgress().atoms.store(0, std::memory_order_relaxed);
  GlobalProgress().rounds.store(0, std::memory_order_relaxed);
}

}  // namespace
}  // namespace gchase
