// Tests for the observability subsystem (src/obs): the tracing core's
// invariants (span nesting, category filtering, bounded buffers that
// drop rather than corrupt), the Chrome-trace exporter's output shape,
// the metrics registry, and the governor contract — an aborted run still
// flushes everything it recorded. The concurrent test is also a TSan
// target (see .github/workflows/ci.yml): eight workers record into the
// tracer while the main thread collects.

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "chase/chase.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

Tracer::Config ConfigFor(uint32_t categories,
                         std::size_t capacity = std::size_t{1} << 14) {
  Tracer::Config config;
  config.categories = categories;
  config.buffer_capacity = capacity;
  return config;
}

/// All collected events flattened, in per-thread order.
std::vector<TraceEvent> AllEvents() {
  std::vector<TraceEvent> out;
  for (const Tracer::ThreadEvents& thread : Tracer::Global().Collect()) {
    out.insert(out.end(), thread.events.begin(), thread.events.end());
  }
  return out;
}

/// Walks one thread's events checking stack discipline: every 'E' closes
/// the innermost open 'B' of the same name, timestamps never decrease,
/// and no span is left open. Returns false (and fails the test) on any
/// violation.
void ExpectBalanced(const Tracer::ThreadEvents& thread) {
  std::vector<const char*> stack;
  uint64_t last_ts = 0;
  for (const TraceEvent& event : thread.events) {
    EXPECT_GE(event.ts_ns, last_ts) << "timestamps must be non-decreasing";
    last_ts = event.ts_ns;
    switch (event.phase) {
      case TracePhase::kBegin:
        stack.push_back(event.name);
        break;
      case TracePhase::kEnd:
        ASSERT_FALSE(stack.empty()) << "E without matching B: " << event.name;
        EXPECT_STREQ(stack.back(), event.name);
        stack.pop_back();
        break;
      case TracePhase::kInstant:
      case TracePhase::kComplete:
        break;
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed spans remain";
}

// -------------------------------------------------------------------------
// Category parsing.

TEST(TraceCategoryTest, ParseSingleAndList) {
  bool ok = false;
  EXPECT_EQ(ParseTraceCategories("chase", &ok),
            static_cast<uint32_t>(TraceCategory::kChase));
  EXPECT_TRUE(ok);
  EXPECT_EQ(ParseTraceCategories("chase,pool,decider", &ok),
            (static_cast<uint32_t>(TraceCategory::kChase) |
             static_cast<uint32_t>(TraceCategory::kPool) |
             static_cast<uint32_t>(TraceCategory::kDecider)));
  EXPECT_TRUE(ok);
}

TEST(TraceCategoryTest, EmptyListMeansEverything) {
  bool ok = false;
  EXPECT_EQ(ParseTraceCategories("", &ok), kAllTraceCategories);
  EXPECT_TRUE(ok);
}

TEST(TraceCategoryTest, UnknownNameFails) {
  bool ok = true;
  EXPECT_EQ(ParseTraceCategories("chase,bogus", &ok), 0u);
  EXPECT_FALSE(ok);
}

TEST(TraceCategoryTest, NamesRoundTrip) {
  for (TraceCategory category :
       {TraceCategory::kChase, TraceCategory::kPool, TraceCategory::kDecider,
        TraceCategory::kStorage, TraceCategory::kFuzz}) {
    bool ok = false;
    EXPECT_EQ(ParseTraceCategories(TraceCategoryName(category), &ok),
              static_cast<uint32_t>(category));
    EXPECT_TRUE(ok);
  }
}

// -------------------------------------------------------------------------
// Tracing core.

TEST(TracerTest, SpansNestAndOrder) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "outer", 1);
    {
      GCHASE_TRACE_SPAN(TraceCategory::kChase, "inner", 2);
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "tick", 3);
    }
  }
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(events[0].arg, 1u);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, TracePhase::kBegin);
  EXPECT_STREQ(events[2].name, "tick");
  EXPECT_EQ(events[2].phase, TracePhase::kInstant);
  EXPECT_STREQ(events[3].name, "inner");
  EXPECT_EQ(events[3].phase, TracePhase::kEnd);
  EXPECT_STREQ(events[4].name, "outer");
  EXPECT_EQ(events[4].phase, TracePhase::kEnd);
  for (const Tracer::ThreadEvents& thread : tracer.Collect()) {
    ExpectBalanced(thread);
  }
}

TEST(TracerTest, CategoryFilteringDropsDisabledCategories) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(static_cast<uint32_t>(TraceCategory::kChase)));
  EXPECT_TRUE(tracer.enabled(TraceCategory::kChase));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kPool));
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "kept");
    GCHASE_TRACE_SPAN(TraceCategory::kPool, "filtered");
    GCHASE_TRACE_INSTANT(TraceCategory::kStorage, "filtered_too", 0);
  }
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "kept");
  EXPECT_STREQ(events[1].name, "kept");
  // Filtering is not dropping: nothing was lost, nothing is counted.
  EXPECT_EQ(tracer.TotalDropped(), 0u);
}

TEST(TracerTest, SessionRestartDiscardsOldEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  GCHASE_TRACE_INSTANT(TraceCategory::kChase, "first_session", 0);
  tracer.Start(ConfigFor(kAllTraceCategories));
  GCHASE_TRACE_INSTANT(TraceCategory::kChase, "second_session", 0);
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "second_session");
}

TEST(TracerTest, OverflowDropsAndCountsWithoutCorruption) {
  Tracer& tracer = Tracer::Global();
  constexpr std::size_t kCapacity = 8;
  tracer.Start(ConfigFor(kAllTraceCategories, kCapacity));
  for (int i = 0; i < 100; ++i) {
    GCHASE_TRACE_INSTANT(TraceCategory::kChase, "flood", i);
  }
  tracer.Stop();

  std::vector<Tracer::ThreadEvents> threads = tracer.Collect();
  ASSERT_EQ(threads.size(), 1u);
  // Exactly the first kCapacity events made it; the rest were counted.
  EXPECT_EQ(threads[0].events.size(), kCapacity);
  EXPECT_EQ(threads[0].dropped, 100u - kCapacity);
  EXPECT_EQ(tracer.TotalDropped(), 100u - kCapacity);
  for (std::size_t i = 0; i < threads[0].events.size(); ++i) {
    EXPECT_STREQ(threads[0].events[i].name, "flood");
    EXPECT_EQ(threads[0].events[i].arg, i);
  }
}

TEST(TracerTest, SaturatedSpansStillClose) {
  Tracer& tracer = Tracer::Global();
  constexpr std::size_t kCapacity = 4;
  tracer.Start(ConfigFor(kAllTraceCategories, kCapacity));
  // Open a span, saturate the buffer, then open more spans (dropped) and
  // close everything. The reserved end slack guarantees the recorded
  // span's end still lands, so the trace stays balanced.
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "recorded_span");
    for (int i = 0; i < 50; ++i) {
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "filler", i);
    }
    {
      GCHASE_TRACE_SPAN(TraceCategory::kChase, "dropped_span");
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "more", 0);
    }
  }
  tracer.Stop();

  std::vector<Tracer::ThreadEvents> threads = tracer.Collect();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_GT(threads[0].dropped, 0u);
  ExpectBalanced(threads[0]);
  // The outer span both began and ended despite saturation in between.
  uint64_t begins = 0;
  uint64_t ends = 0;
  for (const TraceEvent& event : threads[0].events) {
    if (std::string(event.name) != "recorded_span") continue;
    if (event.phase == TracePhase::kBegin) ++begins;
    if (event.phase == TracePhase::kEnd) ++ends;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(TracerTest, CompleteEventsAreThresholdGated) {
  Tracer& tracer = Tracer::Global();
  Tracer::Config config = ConfigFor(kAllTraceCategories);
  config.complete_threshold_ns = 1000;
  tracer.Start(config);
  tracer.RecordComplete(TraceCategory::kChase, "fast", 0, 999, 1);
  tracer.RecordComplete(TraceCategory::kChase, "slow", 0, 1001, 2);
  tracer.Stop();

  std::vector<TraceEvent> events = AllEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "slow");
  EXPECT_EQ(events[0].phase, TracePhase::kComplete);
  EXPECT_EQ(events[0].dur_ns, 1001u);
}

TEST(TracerTest, DisabledTracerRecordsNothingAndAllocatesNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  tracer.Stop();  // fresh empty session, then disabled

  const uint64_t buffers_before = tracer.buffers_created();
  for (int i = 0; i < 1000; ++i) {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "noop", i);
    GCHASE_TRACE_INSTANT(TraceCategory::kPool, "noop_instant", i);
  }
  // No category enabled: no events stored, no buffer ever allocated —
  // the instrumentation cost was one relaxed load per site.
  EXPECT_EQ(tracer.buffers_created(), buffers_before);
  EXPECT_TRUE(AllEvents().empty());
  EXPECT_EQ(tracer.TotalDropped(), 0u);
}

// Eight workers record spans and instants concurrently while the main
// thread collects mid-flight; run under TSan in CI. Single-writer
// buffers with release-publication make this race-free by construction.
TEST(TracerTest, ConcurrentRecordingFromPoolWorkers) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  std::atomic<uint64_t> work{0};
  {
    ThreadPool pool(8);
    pool.ParallelFor(256, [&work](uint64_t i) {
      GCHASE_TRACE_SPAN(TraceCategory::kChase, "unit", i);
      GCHASE_TRACE_INSTANT(TraceCategory::kChase, "unit_tick", i);
      work.fetch_add(i, std::memory_order_relaxed);
      if (i == 128) {
        // Concurrent collection: readers only see published prefixes.
        (void)Tracer::Global().Collect();
      }
    });
  }
  tracer.Stop();
  EXPECT_EQ(work.load(), uint64_t{256} * 255 / 2);

  uint64_t units = 0;
  for (const Tracer::ThreadEvents& thread : tracer.Collect()) {
    ExpectBalanced(thread);
    for (const TraceEvent& event : thread.events) {
      if (std::string(event.name) == "unit" &&
          event.phase == TracePhase::kBegin) {
        ++units;
      }
    }
  }
  // Every unit recorded exactly once, whichever worker ran it (the pool
  // instrumentation contributes pool.* events on top).
  EXPECT_EQ(units, 256u);
}

// -------------------------------------------------------------------------
// Exporter.

TEST(TraceExportTest, ChromeJsonShapeAndBalance) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "export_outer", 7);
    GCHASE_TRACE_INSTANT(TraceCategory::kPool, "export_tick", 9);
  }
  tracer.RecordComplete(TraceCategory::kChase, "export_slow", 0, 1'000'000, 3);
  tracer.Stop();

  const std::string json = TraceToChromeJson(tracer.Collect());
  // Structural sanity without a JSON parser: balanced braces/brackets
  // (no exported string contains either — names are C identifiers) and
  // the required top-level keys. CI's check_trace.py does the real parse.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"chase\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"pool\""), std::string::npos);
  // One B and one E for the span.
  std::size_t begins = 0;
  for (std::size_t pos = json.find("\"ph\": \"B\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"B\"", pos + 1)) {
    ++begins;
  }
  std::size_t ends = 0;
  for (std::size_t pos = json.find("\"ph\": \"E\""); pos != std::string::npos;
       pos = json.find("\"ph\": \"E\"", pos + 1)) {
    ++ends;
  }
  EXPECT_EQ(begins, ends);
}

TEST(TraceExportTest, FlameSummaryAggregatesSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));
  for (int i = 0; i < 3; ++i) {
    GCHASE_TRACE_SPAN(TraceCategory::kChase, "summary_span", i);
  }
  tracer.Stop();

  const std::string summary = TraceFlameSummary(tracer.Collect());
  EXPECT_NE(summary.find("summary_span"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);  // count column
}

TEST(TraceExportTest, SaturatedTraceReportsDrops) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories, 2));
  for (int i = 0; i < 10; ++i) {
    GCHASE_TRACE_INSTANT(TraceCategory::kChase, "drop_me", i);
  }
  tracer.Stop();
  const std::string json = TraceToChromeJson(tracer.Collect());
  EXPECT_NE(json.find("\"dropped_events\": 8"), std::string::npos);
}

// -------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CountersAndGauges) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.Counter("test.counter");
  ASSERT_NE(counter, nullptr);
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), 42u);
  // Find-or-create returns the same instance.
  EXPECT_EQ(registry.Counter("test.counter"), counter);
  EXPECT_EQ(registry.CounterValue("test.counter"), 42u);
  EXPECT_EQ(registry.CounterValue("never.registered"), 0u);

  MetricGauge* gauge = registry.Gauge("test.peak");
  gauge->SetMax(10);
  gauge->SetMax(5);  // lower value must not win
  EXPECT_EQ(gauge->value(), 10);
  gauge->Set(3);  // plain Set always wins
  EXPECT_EQ(gauge->value(), 3);
}

TEST(MetricsTest, SnapshotJsonIsSortedAndIntegral) {
  MetricsRegistry registry;
  registry.Counter("b.second")->Add(2);
  registry.Counter("a.first")->Add(1);
  registry.Gauge("z.gauge")->Set(-7);
  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"a.first\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.second\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"z.gauge\": -7"), std::string::npos);
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsTest, ResetZeroesValuesKeepsRegistrations) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.Counter("test.reset");
  counter->Add(5);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(registry.Counter("test.reset"), counter);
}

TEST(MetricsTest, PublishChaseMetricsExportsParallelFields) {
  ParsedProgram program = MustParse(
      "p(X) -> q(X).\n"
      "q(X) -> r(X).\n"
      "p(a).\n");
  ChaseOptions options;
  ChaseRun run(program.rules, options, program.facts);
  ASSERT_EQ(run.Execute(), ChaseOutcome::kTerminated);

  MetricsRegistry registry;
  PublishChaseMetrics(run.stats(), &registry);
  EXPECT_EQ(registry.CounterValue("chase.runs"), 1u);
  EXPECT_GT(registry.CounterValue("chase.rounds"), 0u);
  EXPECT_GT(registry.CounterValue("chase.triggers_applied"), 0u);
  EXPECT_GT(registry.GaugeValue("chase.peak_atoms"), 0);
  const std::string json = registry.SnapshotJson();
  // The previously-unserialized parallel-discovery fields surface here.
  EXPECT_NE(json.find("\"chase.parallel_rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"chase.estimated_work\""), std::string::npos);
  EXPECT_NE(json.find("\"chase.discovery_threads\""), std::string::npos);
}

// -------------------------------------------------------------------------
// Governor contract: an injected abort still flushes trace and metrics.

TEST(ObsGovernorTest, AbortedChaseStillFlushesTraceAndMetrics) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(ConfigFor(kAllTraceCategories));

  ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  options.fault_injector = [](FaultSite site, uint64_t ordinal) {
    return site == FaultSite::kTriggerApply && ordinal == 3
               ? InjectedFault::kCancel
               : InjectedFault::kNone;
  };
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kCancelled);
  tracer.Stop();

  // Everything recorded before the abort is collectable and balanced —
  // the cooperative stop unwound every open span on its way out.
  bool saw_chase_round = false;
  for (const Tracer::ThreadEvents& thread : tracer.Collect()) {
    ExpectBalanced(thread);
    for (const TraceEvent& event : thread.events) {
      if (std::string(event.name) == "chase.round") saw_chase_round = true;
    }
  }
  EXPECT_TRUE(saw_chase_round);

  // The partial stats publish cleanly too.
  MetricsRegistry registry;
  PublishChaseMetrics(run.stats(), &registry);
  EXPECT_EQ(registry.CounterValue("chase.triggers_applied"), 3u);
  EXPECT_NE(registry.SnapshotJson().find("\"chase.rounds\""),
            std::string::npos);
}

}  // namespace
}  // namespace gchase
