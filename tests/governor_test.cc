// Abort-path tests for the run-governor layer: deadlines, cancellation,
// and deterministic fault injection across the chase engines and the
// termination deciders. Every test asserts the graceful-degradation
// contract — a stopped run returns a distinct outcome with the partial
// instance and stats intact, and never hangs or throws.

#include <chrono>
#include <thread>

#include "base/governor.h"
#include "base/timer.h"
#include "chase/chase.h"
#include "chase/egd_chase.h"
#include "gtest/gtest.h"
#include "reasoning/containment.h"
#include "storage/core.h"
#include "termination/classifier.h"
#include "termination/decider.h"
#include "termination/mfa.h"
#include "termination/restricted_probe.h"
#include "tests/test_util.h"

namespace gchase {
namespace {

// -------------------------------------------------------------------------
// Deadline / CancellationToken primitives.

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(),
            std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, FiniteDeadlineExpires) {
  Deadline d = Deadline::AfterMillis(1);
  EXPECT_FALSE(d.is_infinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, ZeroBudgetIsImmediatelyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
}

TEST(DeadlineTest, SliceOfInfiniteIsInfinite) {
  EXPECT_TRUE(Deadline().Slice(0.5).is_infinite());
}

TEST(DeadlineTest, SliceCoversFractionOfRemainingBudget) {
  Deadline d = Deadline::AfterSeconds(10.0);
  Deadline half = d.Slice(0.5);
  EXPECT_FALSE(half.is_infinite());
  EXPECT_LE(half.RemainingSeconds(), 5.01);
  EXPECT_GT(half.RemainingSeconds(), 4.0);
}

TEST(DeadlineTest, SliceOfExpiredStaysExpired) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_TRUE(d.Slice(0.5).Expired());
}

TEST(DeadlineTest, EarlierPicksTheSoonerDeadline) {
  Deadline near = Deadline::AfterSeconds(1.0);
  Deadline far = Deadline::AfterSeconds(100.0);
  EXPECT_EQ(Deadline::Earlier(near, far).when(), near.when());
  EXPECT_EQ(Deadline::Earlier(far, near).when(), near.when());
  EXPECT_EQ(Deadline::Earlier(near, Deadline()).when(), near.when());
}

TEST(CancellationTest, CopiesShareState) {
  CancellationToken token;
  CancellationToken copy = token;
  EXPECT_FALSE(copy.Cancelled());
  token.RequestCancel();
  EXPECT_TRUE(copy.Cancelled());
  EXPECT_TRUE(token.Cancelled());
}

TEST(GovernorTest, CancellationWinsOverDeadline) {
  CancellationToken token;
  token.RequestCancel();
  RunGovernor governor(Deadline::AfterMillis(0), token);
  EXPECT_EQ(governor.Check(), GovernorState::kCancelled);
}

TEST(GovernorTest, DefaultGovernorIsAlwaysOk) {
  RunGovernor governor;
  EXPECT_EQ(governor.Check(), GovernorState::kOk);
}

// -------------------------------------------------------------------------
// Chase engine: wall-clock deadlines.

// The partial result of an aborted run must be internally consistent:
// stats describe exactly the materialized prefix.
void ExpectConsistentPartialResult(const ChaseRun& run,
                                   std::size_t database_atoms) {
  EXPECT_GE(run.instance().size(), database_atoms);
  EXPECT_EQ(run.stats().peak_atoms, run.instance().size());
  EXPECT_EQ(run.stats().per_round.size(), run.rounds());
  uint64_t applied = 0;
  for (const RuleStats& rule : run.stats().per_rule) applied += rule.applied;
  EXPECT_EQ(applied, run.applied_triggers());
}

TEST(ChaseDeadlineTest, DivergentChaseStopsWithinTwiceTheBudget) {
  // p(X) -> p(Y) under the oblivious chase diverges forever; a 200 ms
  // budget must stop it well before 2x the budget at every thread count.
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
    ChaseOptions options;
    options.variant = ChaseVariant::kOblivious;
    options.discovery_threads = threads;
    options.deadline = Deadline::AfterMillis(200);
    WallTimer timer;
    ChaseRun run(program.rules, options, program.facts);
    ChaseOutcome outcome = run.Execute();
    const double seconds = timer.ElapsedSeconds();
    EXPECT_EQ(outcome, ChaseOutcome::kDeadlineExceeded)
        << "threads=" << threads;
    EXPECT_LT(seconds, 0.4) << "threads=" << threads;
    EXPECT_GT(run.applied_triggers(), 0u) << "threads=" << threads;
    ExpectConsistentPartialResult(run, program.facts.size());
  }
}

TEST(ChaseDeadlineTest, ExpiredDeadlineStopsBeforeAnyWork) {
  ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  options.deadline = Deadline::AfterMillis(0);
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kDeadlineExceeded);
  EXPECT_EQ(run.instance().size(), 1u);  // just the database
  EXPECT_EQ(run.applied_triggers(), 0u);
  EXPECT_EQ(run.rounds(), 0u);
  ExpectConsistentPartialResult(run, program.facts.size());
}

// -------------------------------------------------------------------------
// Chase engine: cancellation from another thread.

TEST(ChaseCancellationTest, SecondThreadCancelsDivergentRun) {
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
    ChaseOptions options;
    options.variant = ChaseVariant::kOblivious;
    options.discovery_threads = threads;
    options.cancel = CancellationToken();
    CancellationToken token = options.cancel;
    std::thread canceller([token]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      token.RequestCancel();
    });
    ChaseRun run(program.rules, options, program.facts);
    ChaseOutcome outcome = run.Execute();
    canceller.join();
    EXPECT_EQ(outcome, ChaseOutcome::kCancelled) << "threads=" << threads;
    ExpectConsistentPartialResult(run, program.facts.size());
  }
}

TEST(ChaseCancellationTest, PreCancelledTokenStopsImmediately) {
  ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  options.cancel.RequestCancel();
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kCancelled);
  EXPECT_EQ(run.applied_triggers(), 0u);
}

// -------------------------------------------------------------------------
// Chase engine: deterministic fault injection.

TEST(FaultInjectionTest, RoundStartFaultStopsAtExactRound) {
  // The oblivious chase of p(X) -> p(Y) applies exactly one trigger per
  // round, so aborting at round-start ordinal 2 leaves two full rounds.
  ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  options.fault_injector = [](FaultSite site, uint64_t ordinal) {
    return site == FaultSite::kRoundStart && ordinal == 2
               ? InjectedFault::kDeadline
               : InjectedFault::kNone;
  };
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kDeadlineExceeded);
  EXPECT_EQ(run.rounds(), 2u);
  EXPECT_EQ(run.stats().per_round.size(), 2u);
  EXPECT_EQ(run.applied_triggers(), 2u);
  ExpectConsistentPartialResult(run, program.facts.size());
}

TEST(FaultInjectionTest, TriggerApplyFaultStopsAtExactTrigger) {
  ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  options.fault_injector = [](FaultSite site, uint64_t ordinal) {
    return site == FaultSite::kTriggerApply && ordinal == 5
               ? InjectedFault::kCancel
               : InjectedFault::kNone;
  };
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kCancelled);
  EXPECT_EQ(run.applied_triggers(), 5u);
  ExpectConsistentPartialResult(run, program.facts.size());
}

TEST(FaultInjectionTest, DiscoveryFaultDropsThePartialCandidateSet) {
  // Aborting at the first discovery unit leaves the database untouched:
  // partial candidates are never applied.
  for (uint32_t threads : {1u, 2u, 4u}) {
    ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
    ChaseOptions options;
    options.variant = ChaseVariant::kOblivious;
    options.discovery_threads = threads;
    options.fault_injector = [](FaultSite site, uint64_t) {
      return site == FaultSite::kDiscovery ? InjectedFault::kDeadline
                                           : InjectedFault::kNone;
    };
    ChaseRun run(program.rules, options, program.facts);
    EXPECT_EQ(run.Execute(), ChaseOutcome::kDeadlineExceeded)
        << "threads=" << threads;
    EXPECT_EQ(run.instance().size(), 1u) << "threads=" << threads;
    EXPECT_EQ(run.applied_triggers(), 0u) << "threads=" << threads;
    ExpectConsistentPartialResult(run, program.facts.size());
  }
}

TEST(FaultInjectionTest, InjectedResourceLimitSurfacesAsResourceLimit) {
  ParsedProgram program = MustParse("p(X) -> p(Y).\np(a).\n");
  ChaseOptions options;
  options.variant = ChaseVariant::kOblivious;
  options.fault_injector = [](FaultSite site, uint64_t ordinal) {
    return site == FaultSite::kRoundStart && ordinal == 1
               ? InjectedFault::kResourceLimit
               : InjectedFault::kNone;
  };
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kResourceLimit);
  EXPECT_EQ(run.rounds(), 1u);
}

TEST(FaultInjectionTest, NoFaultMeansNormalTermination) {
  ParsedProgram program = MustParse("a(X) -> b(X).\na(c).\n");
  ChaseOptions options;
  uint64_t checkpoints = 0;
  options.fault_injector = [&checkpoints](FaultSite, uint64_t) {
    ++checkpoints;
    return InjectedFault::kNone;
  };
  ChaseRun run(program.rules, options, program.facts);
  EXPECT_EQ(run.Execute(), ChaseOutcome::kTerminated);
  EXPECT_GT(checkpoints, 0u);
  EXPECT_TRUE(IsModelOf(run.instance(), program.rules));
}

// -------------------------------------------------------------------------
// EGD engine: cap attribution, deadline, cancellation.

TEST(EgdGovernorTest, StepCapReportsWhichCapFired) {
  // r(X,Y) -> r(Y,Z) diverges under the standard chase.
  ParsedProgram program = MustParse("r(X,Y) -> r(Y,Z).\nr(a,b).\n");
  EgdChaseOptions options;
  options.max_steps = 3;
  EgdChaseResult result = RunStandardChaseWithEgds(
      program.rules, program.egds, options, program.facts);
  EXPECT_EQ(result.outcome, EgdChaseOutcome::kResourceLimit);
  EXPECT_EQ(result.cap, EgdCap::kSteps);
  EXPECT_EQ(result.tgd_applications, 3u);
}

TEST(EgdGovernorTest, NullCapReportsWhichCapFired) {
  ParsedProgram program = MustParse("r(X,Y) -> r(Y,Z).\nr(a,b).\n");
  EgdChaseOptions options;
  options.max_nulls = 2;
  EgdChaseResult result = RunStandardChaseWithEgds(
      program.rules, program.egds, options, program.facts);
  EXPECT_EQ(result.outcome, EgdChaseOutcome::kResourceLimit);
  EXPECT_EQ(result.cap, EgdCap::kNulls);
  EXPECT_EQ(result.nulls_created, 2u);
}

TEST(EgdGovernorTest, TerminatedRunReportsNoCap) {
  ParsedProgram program = MustParse(
      "worker(X) -> emp(X,D), dept(D).\n"
      "emp(X,D1), emp(X,D2) -> D1 = D2.\n"
      "worker(bob). emp(bob, sales).\n");
  EgdChaseResult result = RunStandardChaseWithEgds(
      program.rules, program.egds, EgdChaseOptions{}, program.facts);
  EXPECT_EQ(result.outcome, EgdChaseOutcome::kTerminated);
  EXPECT_EQ(result.cap, EgdCap::kNone);
}

TEST(EgdGovernorTest, DeadlineStopsDivergentRun) {
  ParsedProgram program = MustParse("r(X,Y) -> r(Y,Z).\nr(a,b).\n");
  EgdChaseOptions options;
  options.deadline = Deadline::AfterMillis(100);
  WallTimer timer;
  EgdChaseResult result = RunStandardChaseWithEgds(
      program.rules, program.egds, options, program.facts);
  EXPECT_EQ(result.outcome, EgdChaseOutcome::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedSeconds(), 0.4);
  EXPECT_GE(result.instance.size(), 1u);
}

TEST(EgdGovernorTest, PreCancelledRunLeavesDatabaseUntouched) {
  ParsedProgram program = MustParse("r(X,Y) -> r(Y,Z).\nr(a,b).\n");
  EgdChaseOptions options;
  options.cancel.RequestCancel();
  EgdChaseResult result = RunStandardChaseWithEgds(
      program.rules, program.egds, options, program.facts);
  EXPECT_EQ(result.outcome, EgdChaseOutcome::kCancelled);
  EXPECT_EQ(result.instance.size(), 1u);
  EXPECT_EQ(result.tgd_applications, 0u);
  EXPECT_EQ(result.egd_applications, 0u);
}

// -------------------------------------------------------------------------
// Decider: three-valued downgrade and the exact -> probe cascade.

TEST(DeciderGovernorTest, ExpiredDeadlineDowngradesToUnknown) {
  ParsedProgram program = MustParse("p(X) -> p(Y).\n");
  DeciderOptions options;
  options.deadline = Deadline::AfterMillis(0);
  StatusOr<DeciderResult> result = DecideTermination(
      program.rules, &program.vocabulary, ChaseVariant::kOblivious, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, TerminationVerdict::kUnknown);
  EXPECT_EQ(result->unknown.reason, StopReason::kDeadline);
  EXPECT_EQ(result->unknown.phase, "exact");
  EXPECT_GE(result->unknown.elapsed_seconds, 0.0);
}

TEST(DeciderGovernorTest, ProbeRescuesTerminatingSetAfterInjectedAbort) {
  // The injector kills the exact phase instantly; the fallback probe
  // (which never sees the injector) still proves termination.
  ParsedProgram program = MustParse("a(X) -> b(X).\n");
  DeciderOptions options;
  options.fault_injector = [](FaultSite, uint64_t) {
    return InjectedFault::kDeadline;
  };
  StatusOr<DeciderResult> result = DecideTerminationWithFallback(
      program.rules, &program.vocabulary, ChaseVariant::kOblivious, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, TerminationVerdict::kTerminating);
  EXPECT_EQ(result->phase, "probe");
}

TEST(DeciderGovernorTest, ProbeRescuesNonTerminatingSetAfterInjectedAbort) {
  ParsedProgram program = MustParse("p(X) -> p(Y).\n");
  DeciderOptions options;
  options.fault_injector = [](FaultSite, uint64_t) {
    return InjectedFault::kDeadline;
  };
  StatusOr<DeciderResult> result = DecideTerminationWithFallback(
      program.rules, &program.vocabulary, ChaseVariant::kOblivious, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, TerminationVerdict::kNonTerminating);
  EXPECT_EQ(result->phase, "probe");
  EXPECT_TRUE(result->certificate.has_value());
}

TEST(DeciderGovernorTest, CancellationSkipsTheFallback) {
  ParsedProgram program = MustParse("a(X) -> b(X).\n");
  DeciderOptions options;
  options.cancel.RequestCancel();
  StatusOr<DeciderResult> result = DecideTerminationWithFallback(
      program.rules, &program.vocabulary, ChaseVariant::kOblivious, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, TerminationVerdict::kUnknown);
  EXPECT_EQ(result->unknown.reason, StopReason::kCancelled);
  EXPECT_EQ(result->unknown.phase, "exact");
}

TEST(DeciderGovernorTest, MixedBatchCompletesWithPerItemDowngrades) {
  // A batch over mixed rule sets, each under its own small budget, must
  // finish with a verdict (possibly kUnknown) for every item — one
  // pathological set never hangs the batch.
  const char* programs[] = {
      "a(X) -> b(X).\n",                  // terminating
      "p(X) -> p(Y).\n",                  // provably non-terminating
      "e(X,Y) -> e(Y,Z).\ne(X,Y) -> e(Y,X).\n",  // diverging, harder
  };
  for (const char* text : programs) {
    ParsedProgram program = MustParse(text);
    DeciderOptions options;
    options.deadline = Deadline::AfterMillis(500);
    WallTimer timer;
    StatusOr<DeciderResult> result = DecideTerminationWithFallback(
        program.rules, &program.vocabulary, ChaseVariant::kSemiOblivious,
        options);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_LT(timer.ElapsedSeconds(), 2.0) << text;
    if (result->verdict == TerminationVerdict::kUnknown) {
      EXPECT_NE(result->unknown.reason, StopReason::kNone) << text;
      EXPECT_FALSE(result->unknown.phase.empty()) << text;
    }
  }
}

// -------------------------------------------------------------------------
// Classifier: per-phase budget splitting.

TEST(ClassifierGovernorTest, ExpiredBudgetStillYieldsACompleteReport) {
  // Guarded, non-SL set: both variant analyses go through the decider,
  // which downgrades to kUnknown on the expired budget. The syntactic
  // conditions are ungoverned and still report.
  ParsedProgram program = MustParse("e(X,Y) -> e(Y,Z).\n");
  ClassifierOptions options;
  options.deadline = Deadline::AfterMillis(0);
  options.force_decider = true;
  StatusOr<ClassifierReport> report =
      ClassifyTermination(program.rules, &program.vocabulary, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->oblivious.verdict, TerminationVerdict::kUnknown);
  EXPECT_EQ(report->semi_oblivious.verdict, TerminationVerdict::kUnknown);
  EXPECT_FALSE(report->weakly_acyclic);  // syntactic result still present
  const std::string text = ReportToString(*report);
  EXPECT_NE(text.find("gave up"), std::string::npos);
}

TEST(ClassifierGovernorTest, SyntacticPathIgnoresExpiredBudget) {
  // Simple linear set: Theorem 1 is exact and runs no chase, so the
  // verdicts survive even a zero budget.
  ParsedProgram program = MustParse("p(X) -> q(X).\n");
  ClassifierOptions options;
  options.deadline = Deadline::AfterMillis(0);
  StatusOr<ClassifierReport> report =
      ClassifyTermination(program.rules, &program.vocabulary, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->oblivious.verdict, TerminationVerdict::kTerminating);
  EXPECT_EQ(report->semi_oblivious.verdict, TerminationVerdict::kTerminating);
}

// -------------------------------------------------------------------------
// MFA, restricted probe, core, containment: downgrade semantics.

TEST(MfaGovernorTest, ExpiredDeadlineDowngradesToUnknown) {
  ParsedProgram program = MustParse("p(X) -> q(X,Y).\nq(X,Y) -> p(Y).\n");
  MfaOptions options;
  options.deadline = Deadline::AfterMillis(0);
  StatusOr<MfaResult> result = CheckModelFaithfulAcyclicity(
      program.rules, &program.vocabulary, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, MfaStatus::kUnknown);
  EXPECT_EQ(result->stop_reason, StopReason::kDeadline);
}

TEST(RestrictedProbeGovernorTest, AbortedRunsAreNotDivergenceEvidence) {
  ParsedProgram program = MustParse("r(X,Y) -> r(Y,Z).\n");
  RestrictedProbeOptions options;
  options.num_random_orders = 3;
  options.deadline = Deadline::AfterMillis(0);
  StatusOr<RestrictedProbeResult> result = ProbeRestrictedTermination(
      program.rules, &program.vocabulary, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->runs_aborted, 5u);  // fifo + datalog-first + 3 random
  EXPECT_EQ(result->stop_reason, StopReason::kDeadline);
  EXPECT_FALSE(result->order_sensitive);
  EXPECT_EQ(result->random_orders_terminated, 0u);
  EXPECT_EQ(result->random_orders_diverged, 0u);
}

TEST(CoreGovernorTest, ExpiredDeadlineReturnsInputUnminimized) {
  // e(a,b) plus e(a, _:n0): foldable, but the budget is already gone.
  ParsedProgram program = MustParse("e(a,b).\n");
  Instance instance;
  for (const Atom& atom : program.facts) instance.Insert(atom);
  Term a = Term::Constant(*program.vocabulary.constants.Find("a"));
  instance.Insert(Atom(0, {a, Term::Null(0)}));
  CoreOptions options;
  options.deadline = Deadline::AfterMillis(0);
  CoreResult result = ComputeCore(instance, options);
  EXPECT_FALSE(result.minimized_fully);
  EXPECT_EQ(result.stopped_by, StopReason::kDeadline);
  EXPECT_EQ(result.core.size(), 2u);  // untouched
}

TEST(CoreGovernorTest, CancellationReportsCancelled) {
  ParsedProgram program = MustParse("e(a,b).\n");
  Instance instance;
  for (const Atom& atom : program.facts) instance.Insert(atom);
  Term a = Term::Constant(*program.vocabulary.constants.Find("a"));
  instance.Insert(Atom(0, {a, Term::Null(0)}));
  CoreOptions options;
  options.cancel.RequestCancel();
  CoreResult result = ComputeCore(instance, options);
  EXPECT_FALSE(result.minimized_fully);
  EXPECT_EQ(result.stopped_by, StopReason::kCancelled);
}

TEST(ContainmentGovernorTest, PrefixMatchStaysSoundUnderExpiredDeadline) {
  // Containment provable without any chase: the match succeeds on the
  // frozen database itself, so even a zero budget yields kContained.
  ParsedProgram program = MustParse("e(a,b).\n");
  Vocabulary& vocab = program.vocabulary;
  RuleSet empty;
  StatusOr<ParsedQuery> q1 = ParseQuery("e(X,Y), e(Y,Z)", &vocab);
  StatusOr<ParsedQuery> q2 = ParseQuery("e(X,U)", &vocab);
  ASSERT_TRUE(q1.ok() && q2.ok());
  ConjunctiveQuery two_step{q1->atoms,
                            static_cast<uint32_t>(q1->variable_names.size()),
                            {0}};
  ConjunctiveQuery one_step{q2->atoms,
                            static_cast<uint32_t>(q2->variable_names.size()),
                            {0}};
  ContainmentOptions options;
  options.deadline = Deadline::AfterMillis(0);
  StatusOr<ContainmentVerdict> forward =
      IsContainedIn(two_step, one_step, empty, &vocab, options);
  ASSERT_TRUE(forward.ok());
  EXPECT_EQ(*forward, ContainmentVerdict::kContained);

  // The reverse is refutable only by a *terminated* chase; with the
  // budget gone it must degrade to kUnknown, not claim kNotContained.
  StatusOr<ContainmentVerdict> backward =
      IsContainedIn(one_step, two_step, empty, &vocab, options);
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(*backward, ContainmentVerdict::kUnknown);
}

// -------------------------------------------------------------------------
// Shared vocabulary helpers.

TEST(OutcomeNameTest, NamesAreStable) {
  EXPECT_STREQ(ChaseOutcomeName(ChaseOutcome::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(ChaseOutcomeName(ChaseOutcome::kCancelled), "cancelled");
  EXPECT_STREQ(EgdChaseOutcomeName(EgdChaseOutcome::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(EgdCapName(EgdCap::kNulls), "nulls");
  EXPECT_STREQ(StopReasonName(StopReason::kResourceCap), "resource-cap");
  EXPECT_EQ(StopReasonOf(ChaseOutcome::kDeadlineExceeded),
            StopReason::kDeadline);
  EXPECT_EQ(StopReasonOf(ChaseOutcome::kTerminated), StopReason::kNone);
}

}  // namespace
}  // namespace gchase
