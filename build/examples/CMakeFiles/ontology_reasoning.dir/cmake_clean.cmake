file(REMOVE_RECURSE
  "CMakeFiles/ontology_reasoning.dir/ontology_reasoning.cpp.o"
  "CMakeFiles/ontology_reasoning.dir/ontology_reasoning.cpp.o.d"
  "ontology_reasoning"
  "ontology_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
