# Empty dependencies file for ontology_reasoning.
# This may be replaced when dependencies are built.
