# Empty compiler generated dependencies file for chase_cli.
# This may be replaced when dependencies are built.
