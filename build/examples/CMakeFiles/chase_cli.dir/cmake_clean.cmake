file(REMOVE_RECURSE
  "CMakeFiles/chase_cli.dir/chase_cli.cpp.o"
  "CMakeFiles/chase_cli.dir/chase_cli.cpp.o.d"
  "chase_cli"
  "chase_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
