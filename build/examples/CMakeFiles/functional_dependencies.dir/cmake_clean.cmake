file(REMOVE_RECURSE
  "CMakeFiles/functional_dependencies.dir/functional_dependencies.cpp.o"
  "CMakeFiles/functional_dependencies.dir/functional_dependencies.cpp.o.d"
  "functional_dependencies"
  "functional_dependencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_dependencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
