# Empty dependencies file for functional_dependencies.
# This may be replaced when dependencies are built.
