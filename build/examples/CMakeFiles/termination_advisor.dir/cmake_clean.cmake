file(REMOVE_RECURSE
  "CMakeFiles/termination_advisor.dir/termination_advisor.cpp.o"
  "CMakeFiles/termination_advisor.dir/termination_advisor.cpp.o.d"
  "termination_advisor"
  "termination_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/termination_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
