# Empty compiler generated dependencies file for termination_advisor.
# This may be replaced when dependencies are built.
