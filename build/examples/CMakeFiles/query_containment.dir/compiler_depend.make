# Empty compiler generated dependencies file for query_containment.
# This may be replaced when dependencies are built.
