# Empty compiler generated dependencies file for bench_e8_restricted_probe.
# This may be replaced when dependencies are built.
