file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_restricted_probe.dir/bench_e8_restricted_probe.cc.o"
  "CMakeFiles/bench_e8_restricted_probe.dir/bench_e8_restricted_probe.cc.o.d"
  "bench_e8_restricted_probe"
  "bench_e8_restricted_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_restricted_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
