file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_chase_engines.dir/bench_e7_chase_engines.cc.o"
  "CMakeFiles/bench_e7_chase_engines.dir/bench_e7_chase_engines.cc.o.d"
  "bench_e7_chase_engines"
  "bench_e7_chase_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_chase_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
