# Empty compiler generated dependencies file for bench_e7_chase_engines.
# This may be replaced when dependencies are built.
