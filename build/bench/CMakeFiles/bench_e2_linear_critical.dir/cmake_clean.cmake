file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_linear_critical.dir/bench_e2_linear_critical.cc.o"
  "CMakeFiles/bench_e2_linear_critical.dir/bench_e2_linear_critical.cc.o.d"
  "bench_e2_linear_critical"
  "bench_e2_linear_critical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_linear_critical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
