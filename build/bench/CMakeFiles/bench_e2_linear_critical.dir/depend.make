# Empty dependencies file for bench_e2_linear_critical.
# This may be replaced when dependencies are built.
