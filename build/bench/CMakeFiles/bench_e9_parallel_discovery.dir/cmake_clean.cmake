file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_parallel_discovery.dir/bench_e9_parallel_discovery.cc.o"
  "CMakeFiles/bench_e9_parallel_discovery.dir/bench_e9_parallel_discovery.cc.o.d"
  "bench_e9_parallel_discovery"
  "bench_e9_parallel_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_parallel_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
