# Empty dependencies file for bench_e9_parallel_discovery.
# This may be replaced when dependencies are built.
