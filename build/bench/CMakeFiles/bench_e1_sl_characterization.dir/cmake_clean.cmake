file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_sl_characterization.dir/bench_e1_sl_characterization.cc.o"
  "CMakeFiles/bench_e1_sl_characterization.dir/bench_e1_sl_characterization.cc.o.d"
  "bench_e1_sl_characterization"
  "bench_e1_sl_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_sl_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
