# Empty compiler generated dependencies file for bench_e1_sl_characterization.
# This may be replaced when dependencies are built.
