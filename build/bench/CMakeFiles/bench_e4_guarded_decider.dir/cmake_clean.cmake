file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_guarded_decider.dir/bench_e4_guarded_decider.cc.o"
  "CMakeFiles/bench_e4_guarded_decider.dir/bench_e4_guarded_decider.cc.o.d"
  "bench_e4_guarded_decider"
  "bench_e4_guarded_decider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_guarded_decider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
