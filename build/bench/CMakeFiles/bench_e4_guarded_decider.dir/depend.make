# Empty dependencies file for bench_e4_guarded_decider.
# This may be replaced when dependencies are built.
