file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_looping_operator.dir/bench_e6_looping_operator.cc.o"
  "CMakeFiles/bench_e6_looping_operator.dir/bench_e6_looping_operator.cc.o.d"
  "bench_e6_looping_operator"
  "bench_e6_looping_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_looping_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
