# Empty compiler generated dependencies file for bench_e6_looping_operator.
# This may be replaced when dependencies are built.
