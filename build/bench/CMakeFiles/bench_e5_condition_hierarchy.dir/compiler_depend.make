# Empty compiler generated dependencies file for bench_e5_condition_hierarchy.
# This may be replaced when dependencies are built.
