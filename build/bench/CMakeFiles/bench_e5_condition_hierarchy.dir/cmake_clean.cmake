file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_condition_hierarchy.dir/bench_e5_condition_hierarchy.cc.o"
  "CMakeFiles/bench_e5_condition_hierarchy.dir/bench_e5_condition_hierarchy.cc.o.d"
  "bench_e5_condition_hierarchy"
  "bench_e5_condition_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_condition_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
