# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/instance_test[1]_include.cmake")
include("/root/repo/build/tests/homomorphism_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/acyclicity_test[1]_include.cmake")
include("/root/repo/build/tests/decider_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/critical_instance_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
include("/root/repo/build/tests/mfa_test[1]_include.cmake")
include("/root/repo/build/tests/restricted_probe_test[1]_include.cmake")
include("/root/repo/build/tests/pump_detector_test[1]_include.cmake")
include("/root/repo/build/tests/chase_limits_test[1]_include.cmake")
include("/root/repo/build/tests/chase_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/egd_test[1]_include.cmake")
include("/root/repo/build/tests/containment_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/containment_property_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/parser_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/stickiness_test[1]_include.cmake")
include("/root/repo/build/tests/forest_test[1]_include.cmake")
