# Empty compiler generated dependencies file for decider_test.
# This may be replaced when dependencies are built.
