file(REMOVE_RECURSE
  "CMakeFiles/decider_test.dir/decider_test.cc.o"
  "CMakeFiles/decider_test.dir/decider_test.cc.o.d"
  "decider_test"
  "decider_test.pdb"
  "decider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
