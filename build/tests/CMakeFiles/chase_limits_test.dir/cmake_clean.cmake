file(REMOVE_RECURSE
  "CMakeFiles/chase_limits_test.dir/chase_limits_test.cc.o"
  "CMakeFiles/chase_limits_test.dir/chase_limits_test.cc.o.d"
  "chase_limits_test"
  "chase_limits_test.pdb"
  "chase_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
