# Empty compiler generated dependencies file for chase_limits_test.
# This may be replaced when dependencies are built.
