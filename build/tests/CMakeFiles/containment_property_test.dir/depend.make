# Empty dependencies file for containment_property_test.
# This may be replaced when dependencies are built.
