file(REMOVE_RECURSE
  "CMakeFiles/chase_parallel_test.dir/chase_parallel_test.cc.o"
  "CMakeFiles/chase_parallel_test.dir/chase_parallel_test.cc.o.d"
  "chase_parallel_test"
  "chase_parallel_test.pdb"
  "chase_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chase_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
