
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chase_parallel_test.cc" "tests/CMakeFiles/chase_parallel_test.dir/chase_parallel_test.cc.o" "gcc" "tests/CMakeFiles/chase_parallel_test.dir/chase_parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/termination/CMakeFiles/gchase_termination.dir/DependInfo.cmake"
  "/root/repo/build/src/generator/CMakeFiles/gchase_generator.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoning/CMakeFiles/gchase_reasoning.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/gchase_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/acyclicity/CMakeFiles/gchase_acyclicity.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gchase_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/gchase_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gchase_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
