# Empty dependencies file for chase_parallel_test.
# This may be replaced when dependencies are built.
