# Empty dependencies file for egd_test.
# This may be replaced when dependencies are built.
