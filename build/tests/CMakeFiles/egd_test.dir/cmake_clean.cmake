file(REMOVE_RECURSE
  "CMakeFiles/egd_test.dir/egd_test.cc.o"
  "CMakeFiles/egd_test.dir/egd_test.cc.o.d"
  "egd_test"
  "egd_test.pdb"
  "egd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/egd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
