# Empty compiler generated dependencies file for critical_instance_test.
# This may be replaced when dependencies are built.
