file(REMOVE_RECURSE
  "CMakeFiles/critical_instance_test.dir/critical_instance_test.cc.o"
  "CMakeFiles/critical_instance_test.dir/critical_instance_test.cc.o.d"
  "critical_instance_test"
  "critical_instance_test.pdb"
  "critical_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/critical_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
