# Empty compiler generated dependencies file for mfa_test.
# This may be replaced when dependencies are built.
