file(REMOVE_RECURSE
  "CMakeFiles/mfa_test.dir/mfa_test.cc.o"
  "CMakeFiles/mfa_test.dir/mfa_test.cc.o.d"
  "mfa_test"
  "mfa_test.pdb"
  "mfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
