file(REMOVE_RECURSE
  "CMakeFiles/stickiness_test.dir/stickiness_test.cc.o"
  "CMakeFiles/stickiness_test.dir/stickiness_test.cc.o.d"
  "stickiness_test"
  "stickiness_test.pdb"
  "stickiness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stickiness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
