# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pump_detector_test.
