file(REMOVE_RECURSE
  "CMakeFiles/pump_detector_test.dir/pump_detector_test.cc.o"
  "CMakeFiles/pump_detector_test.dir/pump_detector_test.cc.o.d"
  "pump_detector_test"
  "pump_detector_test.pdb"
  "pump_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pump_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
