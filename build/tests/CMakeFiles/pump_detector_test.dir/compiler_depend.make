# Empty compiler generated dependencies file for pump_detector_test.
# This may be replaced when dependencies are built.
