file(REMOVE_RECURSE
  "CMakeFiles/restricted_probe_test.dir/restricted_probe_test.cc.o"
  "CMakeFiles/restricted_probe_test.dir/restricted_probe_test.cc.o.d"
  "restricted_probe_test"
  "restricted_probe_test.pdb"
  "restricted_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restricted_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
