# Empty compiler generated dependencies file for restricted_probe_test.
# This may be replaced when dependencies are built.
