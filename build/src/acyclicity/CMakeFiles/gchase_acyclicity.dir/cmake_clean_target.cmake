file(REMOVE_RECURSE
  "libgchase_acyclicity.a"
)
