# Empty dependencies file for gchase_acyclicity.
# This may be replaced when dependencies are built.
