
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acyclicity/dependency_graph.cc" "src/acyclicity/CMakeFiles/gchase_acyclicity.dir/dependency_graph.cc.o" "gcc" "src/acyclicity/CMakeFiles/gchase_acyclicity.dir/dependency_graph.cc.o.d"
  "/root/repo/src/acyclicity/joint_acyclicity.cc" "src/acyclicity/CMakeFiles/gchase_acyclicity.dir/joint_acyclicity.cc.o" "gcc" "src/acyclicity/CMakeFiles/gchase_acyclicity.dir/joint_acyclicity.cc.o.d"
  "/root/repo/src/acyclicity/stickiness.cc" "src/acyclicity/CMakeFiles/gchase_acyclicity.dir/stickiness.cc.o" "gcc" "src/acyclicity/CMakeFiles/gchase_acyclicity.dir/stickiness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/gchase_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gchase_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
