file(REMOVE_RECURSE
  "CMakeFiles/gchase_acyclicity.dir/dependency_graph.cc.o"
  "CMakeFiles/gchase_acyclicity.dir/dependency_graph.cc.o.d"
  "CMakeFiles/gchase_acyclicity.dir/joint_acyclicity.cc.o"
  "CMakeFiles/gchase_acyclicity.dir/joint_acyclicity.cc.o.d"
  "CMakeFiles/gchase_acyclicity.dir/stickiness.cc.o"
  "CMakeFiles/gchase_acyclicity.dir/stickiness.cc.o.d"
  "libgchase_acyclicity.a"
  "libgchase_acyclicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_acyclicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
