file(REMOVE_RECURSE
  "CMakeFiles/gchase_reasoning.dir/containment.cc.o"
  "CMakeFiles/gchase_reasoning.dir/containment.cc.o.d"
  "libgchase_reasoning.a"
  "libgchase_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
