# Empty dependencies file for gchase_reasoning.
# This may be replaced when dependencies are built.
