file(REMOVE_RECURSE
  "libgchase_reasoning.a"
)
