# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("model")
subdirs("storage")
subdirs("chase")
subdirs("acyclicity")
subdirs("termination")
subdirs("generator")
subdirs("reasoning")
