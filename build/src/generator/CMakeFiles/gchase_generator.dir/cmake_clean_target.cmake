file(REMOVE_RECURSE
  "libgchase_generator.a"
)
