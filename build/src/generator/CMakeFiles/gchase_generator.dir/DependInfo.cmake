
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generator/random_rules.cc" "src/generator/CMakeFiles/gchase_generator.dir/random_rules.cc.o" "gcc" "src/generator/CMakeFiles/gchase_generator.dir/random_rules.cc.o.d"
  "/root/repo/src/generator/workloads.cc" "src/generator/CMakeFiles/gchase_generator.dir/workloads.cc.o" "gcc" "src/generator/CMakeFiles/gchase_generator.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/gchase_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gchase_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
