file(REMOVE_RECURSE
  "CMakeFiles/gchase_generator.dir/random_rules.cc.o"
  "CMakeFiles/gchase_generator.dir/random_rules.cc.o.d"
  "CMakeFiles/gchase_generator.dir/workloads.cc.o"
  "CMakeFiles/gchase_generator.dir/workloads.cc.o.d"
  "libgchase_generator.a"
  "libgchase_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
