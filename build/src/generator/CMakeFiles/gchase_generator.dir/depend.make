# Empty dependencies file for gchase_generator.
# This may be replaced when dependencies are built.
