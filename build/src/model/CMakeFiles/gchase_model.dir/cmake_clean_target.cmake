file(REMOVE_RECURSE
  "libgchase_model.a"
)
