# Empty dependencies file for gchase_model.
# This may be replaced when dependencies are built.
