file(REMOVE_RECURSE
  "CMakeFiles/gchase_model.dir/egd.cc.o"
  "CMakeFiles/gchase_model.dir/egd.cc.o.d"
  "CMakeFiles/gchase_model.dir/parser.cc.o"
  "CMakeFiles/gchase_model.dir/parser.cc.o.d"
  "CMakeFiles/gchase_model.dir/printer.cc.o"
  "CMakeFiles/gchase_model.dir/printer.cc.o.d"
  "CMakeFiles/gchase_model.dir/schema.cc.o"
  "CMakeFiles/gchase_model.dir/schema.cc.o.d"
  "CMakeFiles/gchase_model.dir/symbol_table.cc.o"
  "CMakeFiles/gchase_model.dir/symbol_table.cc.o.d"
  "CMakeFiles/gchase_model.dir/tgd.cc.o"
  "CMakeFiles/gchase_model.dir/tgd.cc.o.d"
  "libgchase_model.a"
  "libgchase_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
