
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/egd.cc" "src/model/CMakeFiles/gchase_model.dir/egd.cc.o" "gcc" "src/model/CMakeFiles/gchase_model.dir/egd.cc.o.d"
  "/root/repo/src/model/parser.cc" "src/model/CMakeFiles/gchase_model.dir/parser.cc.o" "gcc" "src/model/CMakeFiles/gchase_model.dir/parser.cc.o.d"
  "/root/repo/src/model/printer.cc" "src/model/CMakeFiles/gchase_model.dir/printer.cc.o" "gcc" "src/model/CMakeFiles/gchase_model.dir/printer.cc.o.d"
  "/root/repo/src/model/schema.cc" "src/model/CMakeFiles/gchase_model.dir/schema.cc.o" "gcc" "src/model/CMakeFiles/gchase_model.dir/schema.cc.o.d"
  "/root/repo/src/model/symbol_table.cc" "src/model/CMakeFiles/gchase_model.dir/symbol_table.cc.o" "gcc" "src/model/CMakeFiles/gchase_model.dir/symbol_table.cc.o.d"
  "/root/repo/src/model/tgd.cc" "src/model/CMakeFiles/gchase_model.dir/tgd.cc.o" "gcc" "src/model/CMakeFiles/gchase_model.dir/tgd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/gchase_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
