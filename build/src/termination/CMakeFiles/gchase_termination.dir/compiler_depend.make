# Empty compiler generated dependencies file for gchase_termination.
# This may be replaced when dependencies are built.
