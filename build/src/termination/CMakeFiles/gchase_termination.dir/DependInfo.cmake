
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/termination/classifier.cc" "src/termination/CMakeFiles/gchase_termination.dir/classifier.cc.o" "gcc" "src/termination/CMakeFiles/gchase_termination.dir/classifier.cc.o.d"
  "/root/repo/src/termination/critical_instance.cc" "src/termination/CMakeFiles/gchase_termination.dir/critical_instance.cc.o" "gcc" "src/termination/CMakeFiles/gchase_termination.dir/critical_instance.cc.o.d"
  "/root/repo/src/termination/decider.cc" "src/termination/CMakeFiles/gchase_termination.dir/decider.cc.o" "gcc" "src/termination/CMakeFiles/gchase_termination.dir/decider.cc.o.d"
  "/root/repo/src/termination/looping_operator.cc" "src/termination/CMakeFiles/gchase_termination.dir/looping_operator.cc.o" "gcc" "src/termination/CMakeFiles/gchase_termination.dir/looping_operator.cc.o.d"
  "/root/repo/src/termination/mfa.cc" "src/termination/CMakeFiles/gchase_termination.dir/mfa.cc.o" "gcc" "src/termination/CMakeFiles/gchase_termination.dir/mfa.cc.o.d"
  "/root/repo/src/termination/pump_detector.cc" "src/termination/CMakeFiles/gchase_termination.dir/pump_detector.cc.o" "gcc" "src/termination/CMakeFiles/gchase_termination.dir/pump_detector.cc.o.d"
  "/root/repo/src/termination/restricted_probe.cc" "src/termination/CMakeFiles/gchase_termination.dir/restricted_probe.cc.o" "gcc" "src/termination/CMakeFiles/gchase_termination.dir/restricted_probe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chase/CMakeFiles/gchase_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/acyclicity/CMakeFiles/gchase_acyclicity.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/gchase_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/gchase_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gchase_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
