file(REMOVE_RECURSE
  "CMakeFiles/gchase_termination.dir/classifier.cc.o"
  "CMakeFiles/gchase_termination.dir/classifier.cc.o.d"
  "CMakeFiles/gchase_termination.dir/critical_instance.cc.o"
  "CMakeFiles/gchase_termination.dir/critical_instance.cc.o.d"
  "CMakeFiles/gchase_termination.dir/decider.cc.o"
  "CMakeFiles/gchase_termination.dir/decider.cc.o.d"
  "CMakeFiles/gchase_termination.dir/looping_operator.cc.o"
  "CMakeFiles/gchase_termination.dir/looping_operator.cc.o.d"
  "CMakeFiles/gchase_termination.dir/mfa.cc.o"
  "CMakeFiles/gchase_termination.dir/mfa.cc.o.d"
  "CMakeFiles/gchase_termination.dir/pump_detector.cc.o"
  "CMakeFiles/gchase_termination.dir/pump_detector.cc.o.d"
  "CMakeFiles/gchase_termination.dir/restricted_probe.cc.o"
  "CMakeFiles/gchase_termination.dir/restricted_probe.cc.o.d"
  "libgchase_termination.a"
  "libgchase_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
