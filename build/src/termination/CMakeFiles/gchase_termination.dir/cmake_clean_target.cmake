file(REMOVE_RECURSE
  "libgchase_termination.a"
)
