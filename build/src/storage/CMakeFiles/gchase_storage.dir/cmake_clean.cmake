file(REMOVE_RECURSE
  "CMakeFiles/gchase_storage.dir/core.cc.o"
  "CMakeFiles/gchase_storage.dir/core.cc.o.d"
  "CMakeFiles/gchase_storage.dir/homomorphism.cc.o"
  "CMakeFiles/gchase_storage.dir/homomorphism.cc.o.d"
  "CMakeFiles/gchase_storage.dir/instance.cc.o"
  "CMakeFiles/gchase_storage.dir/instance.cc.o.d"
  "CMakeFiles/gchase_storage.dir/io.cc.o"
  "CMakeFiles/gchase_storage.dir/io.cc.o.d"
  "CMakeFiles/gchase_storage.dir/query.cc.o"
  "CMakeFiles/gchase_storage.dir/query.cc.o.d"
  "libgchase_storage.a"
  "libgchase_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
