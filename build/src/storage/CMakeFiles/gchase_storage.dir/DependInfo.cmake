
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/core.cc" "src/storage/CMakeFiles/gchase_storage.dir/core.cc.o" "gcc" "src/storage/CMakeFiles/gchase_storage.dir/core.cc.o.d"
  "/root/repo/src/storage/homomorphism.cc" "src/storage/CMakeFiles/gchase_storage.dir/homomorphism.cc.o" "gcc" "src/storage/CMakeFiles/gchase_storage.dir/homomorphism.cc.o.d"
  "/root/repo/src/storage/instance.cc" "src/storage/CMakeFiles/gchase_storage.dir/instance.cc.o" "gcc" "src/storage/CMakeFiles/gchase_storage.dir/instance.cc.o.d"
  "/root/repo/src/storage/io.cc" "src/storage/CMakeFiles/gchase_storage.dir/io.cc.o" "gcc" "src/storage/CMakeFiles/gchase_storage.dir/io.cc.o.d"
  "/root/repo/src/storage/query.cc" "src/storage/CMakeFiles/gchase_storage.dir/query.cc.o" "gcc" "src/storage/CMakeFiles/gchase_storage.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/gchase_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gchase_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
