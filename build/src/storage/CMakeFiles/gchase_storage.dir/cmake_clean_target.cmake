file(REMOVE_RECURSE
  "libgchase_storage.a"
)
