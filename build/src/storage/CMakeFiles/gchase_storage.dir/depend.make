# Empty dependencies file for gchase_storage.
# This may be replaced when dependencies are built.
