
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/chase.cc" "src/chase/CMakeFiles/gchase_chase.dir/chase.cc.o" "gcc" "src/chase/CMakeFiles/gchase_chase.dir/chase.cc.o.d"
  "/root/repo/src/chase/egd_chase.cc" "src/chase/CMakeFiles/gchase_chase.dir/egd_chase.cc.o" "gcc" "src/chase/CMakeFiles/gchase_chase.dir/egd_chase.cc.o.d"
  "/root/repo/src/chase/forest.cc" "src/chase/CMakeFiles/gchase_chase.dir/forest.cc.o" "gcc" "src/chase/CMakeFiles/gchase_chase.dir/forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/gchase_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/gchase_model.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/gchase_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
