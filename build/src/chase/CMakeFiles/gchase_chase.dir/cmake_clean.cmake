file(REMOVE_RECURSE
  "CMakeFiles/gchase_chase.dir/chase.cc.o"
  "CMakeFiles/gchase_chase.dir/chase.cc.o.d"
  "CMakeFiles/gchase_chase.dir/egd_chase.cc.o"
  "CMakeFiles/gchase_chase.dir/egd_chase.cc.o.d"
  "CMakeFiles/gchase_chase.dir/forest.cc.o"
  "CMakeFiles/gchase_chase.dir/forest.cc.o.d"
  "libgchase_chase.a"
  "libgchase_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
