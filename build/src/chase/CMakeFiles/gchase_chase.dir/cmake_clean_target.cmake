file(REMOVE_RECURSE
  "libgchase_chase.a"
)
