# Empty compiler generated dependencies file for gchase_chase.
# This may be replaced when dependencies are built.
