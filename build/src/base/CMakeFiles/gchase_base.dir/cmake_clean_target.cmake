file(REMOVE_RECURSE
  "libgchase_base.a"
)
