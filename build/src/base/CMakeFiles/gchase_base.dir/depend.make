# Empty dependencies file for gchase_base.
# This may be replaced when dependencies are built.
