file(REMOVE_RECURSE
  "CMakeFiles/gchase_base.dir/status.cc.o"
  "CMakeFiles/gchase_base.dir/status.cc.o.d"
  "CMakeFiles/gchase_base.dir/string_util.cc.o"
  "CMakeFiles/gchase_base.dir/string_util.cc.o.d"
  "libgchase_base.a"
  "libgchase_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchase_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
