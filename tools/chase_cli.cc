// chase_cli: run any chase variant on a rule/fact file and print the
// result — a minimal command-line front end over the library.
//
// Usage:
//   ./build/tools/chase_cli <file.dlgp> [variant] [max_atoms]
//                           [--dot] [--stats] [--threads=N]
//                           [--deadline-ms=N] [--max-memory-mb=N]
//                           [--load-csv=FILE] [--edb-dir=DIR]
//                           [--decide] [--trace=FILE]
//                           [--trace-categories=LIST]
//                           [--metrics-json=FILE]
//     variant:    restricted (default) | semi-oblivious | oblivious
//     max_atoms:  resource cap (default 10000)
//     --dot:      emit the guarded chase forest in Graphviz DOT instead
//                 of the atom list (pipe into `dot -Tsvg`)
//     --stats:    emit the run's ChaseStats as JSON instead of the atom
//                 list (per-rule counters, per-round timings, peaks)
//     --threads=N parallel trigger discovery with N workers (default 1;
//                 the result is bit-identical for every N)
//     --join-plans=on|off  compiled set-at-a-time join plans for trigger
//                 discovery (default on); off routes every rule through
//                 the legacy backtracking search. The result is
//                 bit-identical either way — this is a performance
//                 toggle and the differential-testing baseline
//     --deadline-ms=N  wall-clock budget; an expired run stops at its
//                 next cooperative checkpoint with the partial instance
//                 and stats intact
//     --max-memory-mb=N  byte budget for the run's retained storage; a
//                 run that would cross it stops cleanly (exit code 6)
//                 with the partial instance and stats intact, and the
//                 partial result is bit-identical to a prefix of the
//                 uncapped run
//     --load-csv=FILE  bulk-load the database from a CSV fact file
//                 (predicate,arg1,...; see storage/bulk_load.h) instead
//                 of the program's inline facts. The loader bypasses the
//                 per-atom parser; the chase result is bit-identical to
//                 running the same facts inline. With --max-memory-mb
//                 the loader and the chase share one budget, so a load
//                 that trips it exits 6 with partial load stats.
//     --edb-dir=DIR  snapshot cache: opens DIR/edb.gsnap (memory-mapped
//                 columnar EDB) when present; otherwise loads --load-csv
//                 and writes the snapshot there for the next run
//     --decide:   instead of chasing the input database, run the full
//                 termination analysis on the rule set: the exact/probe
//                 decider cascade for both the oblivious and the
//                 semi-oblivious chase, plus the restricted-chase order
//                 probe fanned out over a 2-worker pool — the one-flag
//                 way to exercise the chase, decider and pool layers in
//                 a single traceable process
//     --trace=FILE  record a Chrome-trace/Perfetto JSON of the run (load
//                 it at ui.perfetto.dev); a flame summary of the spans
//                 goes to stderr, and a machine-readable copy to
//                 FILE.summary.json
//     --trace-categories=LIST  comma-separated subset of
//                 chase,pool,decider,storage,fuzz (default: all)
//     --metrics-json=FILE  write the process metrics registry snapshot
//                 (chase.* counters including the parallel-discovery
//                 fields, forest.* gauges, latency histograms and the
//                 per-phase perf-counter section) as JSON. Also turns
//                 the profiling layer on: round/apply/discovery latency
//                 distributions and — where the kernel allows
//                 perf_event_open — per-phase IPC and cache-miss rates
//     --progress[=MS]  heartbeat: report round/atoms/atoms-per-second/
//                 memory/deadline every MS milliseconds (default 1000)
//                 as human-readable stderr lines
//     --progress-file=FILE  write the heartbeat as NDJSON to FILE
//                 instead of stderr (implies --progress)
//
// Ctrl-C (SIGINT) trips the run's cancellation token instead of killing
// the process: the chase stops cooperatively and the partial result is
// printed, exactly as on deadline expiry.
//
// Exit codes: 0 terminated, 1 I/O or parse error, 2 bad usage,
// 3 resource cap, 4 deadline exceeded, 5 cancelled, 6 memory budget
// exceeded.
//
// The input file holds rules and facts in the library's syntax; see
// examples/rules/*.dlgp.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "base/thread_pool.h"
#include "base/timer.h"
#include "bench/bench_util.h"
#include "chase/chase.h"
#include "chase/forest.h"
#include "model/parser.h"
#include "model/printer.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "storage/bulk_load.h"
#include "storage/edb.h"
#include "storage/edb_snapshot.h"
#include "termination/decider.h"
#include "termination/restricted_probe.h"

namespace {

// Shared with the SIGINT handler; RequestCancel is a relaxed atomic
// store, which is async-signal-safe.
gchase::CancellationToken g_cancel;

extern "C" void HandleSigint(int) { g_cancel.RequestCancel(); }

int ExitCodeFor(gchase::ChaseOutcome outcome) {
  switch (outcome) {
    case gchase::ChaseOutcome::kTerminated:
      return 0;
    case gchase::ChaseOutcome::kResourceLimit:
    case gchase::ChaseOutcome::kAborted:
      return 3;
    case gchase::ChaseOutcome::kDeadlineExceeded:
      return 4;
    case gchase::ChaseOutcome::kCancelled:
      return 5;
    case gchase::ChaseOutcome::kMemoryBudgetExceeded:
      return 6;
  }
  return 1;
}

// Flushes the observability side-channels on every exit path (normal,
// deadline, SIGINT): destructor order guarantees the progress heartbeat's
// final sample, the trace file, the flame-summary sidecar and the metrics
// snapshot are written no matter which return fires. Buffered events
// survive Tracer::Stop(), so an aborted run still flushes everything it
// recorded.
struct ObsFlusher {
  std::string trace_path;
  std::string metrics_path;
  gchase::ProgressReporter progress;

  ~ObsFlusher() {
    // The heartbeat first: its final sample reports where the run got to
    // before the (possibly slow) trace serialization below.
    progress.Stop();
    if (!trace_path.empty()) {
      gchase::Tracer::Global().Stop();
      const std::string summary_path = trace_path + ".summary.json";
      if (gchase::WriteGlobalTrace(trace_path) &&
          gchase::WriteGlobalTraceSummary(summary_path)) {
        std::fprintf(
            stderr, "%% trace written to %s (summary: %s)\n%s",
            trace_path.c_str(), summary_path.c_str(),
            gchase::TraceFlameSummary(gchase::Tracer::Global().Collect())
                .c_str());
      } else {
        std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (out) {
        out << gchase::MetricsRegistry::Global().SnapshotJson() << "\n";
      } else {
        std::fprintf(stderr, "cannot write metrics to %s\n",
                     metrics_path.c_str());
      }
    }
  }
};

// The --decide mode: full termination analysis of the rule set. Returns
// the process exit code (0 = every phase ran; verdicts are data, not
// errors).
int RunDecideMode(gchase::ParsedProgram& parsed, int64_t deadline_ms,
                  uint32_t threads, uint64_t max_memory_bytes) {
  using namespace gchase;
  DeciderOptions options;
  options.discovery_threads = threads;
  if (deadline_ms >= 0) options.deadline = Deadline::AfterMillis(deadline_ms);
  options.cancel = g_cancel;
  options.max_memory_bytes = max_memory_bytes;

  for (ChaseVariant variant :
       {ChaseVariant::kOblivious, ChaseVariant::kSemiOblivious}) {
    StatusOr<DeciderResult> result = DecideTerminationWithFallback(
        parsed.rules, &parsed.vocabulary, variant, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%% decide variant=%s verdict=%s phase=%s atoms=%llu\n",
                ChaseVariantName(variant),
                TerminationVerdictName(result->verdict),
                result->phase.c_str(),
                static_cast<unsigned long long>(result->chase_atoms));
    if (!result->certificate_text.empty()) {
      std::printf("%%   %s\n", result->certificate_text.c_str());
    }
    PublishChaseMetrics(result->chase_stats);
  }

  // Restricted-chase order probe over its own 2-worker pool. The pool is
  // deliberately created regardless of core count so the pool category
  // records scheduler events (run/steal/park) even on a 1-core host.
  RestrictedProbeOptions probe;
  probe.executor = std::make_shared<ThreadPool>(2);
  probe.num_random_orders = 4;
  if (deadline_ms >= 0) probe.deadline = Deadline::AfterMillis(deadline_ms);
  probe.cancel = g_cancel;
  probe.max_memory_bytes = max_memory_bytes;
  StatusOr<RestrictedProbeResult> probed =
      ProbeRestrictedTermination(parsed.rules, &parsed.vocabulary, {}, probe);
  if (!probed.ok()) {
    std::fprintf(stderr, "%s\n", probed.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%% probe restricted fifo=%s datalog_first=%s random=%u/%u "
      "order_sensitive=%s aborted=%u\n",
      probed->fifo_terminated ? "terminated" : "diverged",
      probed->datalog_first_terminated ? "terminated" : "diverged",
      probed->random_orders_terminated,
      probed->random_orders_terminated + probed->random_orders_diverged,
      probed->order_sensitive ? "yes" : "no", probed->runs_aborted);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gchase;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.dlgp> [restricted|semi-oblivious|"
                 "oblivious] [max_atoms] [--dot] [--stats] [--threads=N] "
                 "[--join-plans=on|off] "
                 "[--deadline-ms=N] [--max-memory-mb=N] "
                 "[--load-csv=FILE] [--edb-dir=DIR] [--decide] "
                 "[--trace=FILE] [--trace-categories=LIST] "
                 "[--metrics-json=FILE] [--progress[=MS]] "
                 "[--progress-file=FILE]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  StatusOr<ParsedProgram> parsed = ParseProgram(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }

  bool want_dot = false;
  bool want_stats = false;
  bool want_decide = false;
  bool join_plans = true;
  std::string load_csv_path;
  std::string edb_dir;
  uint32_t threads = 1;
  int64_t deadline_ms = -1;
  uint64_t max_memory_bytes = 0;
  uint64_t progress_interval_ms = 0;  // 0 = heartbeat off.
  std::string progress_file;
  uint32_t trace_categories = kAllTraceCategories;
  ObsFlusher flusher;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      want_dot = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--decide") == 0) {
      want_decide = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      flusher.trace_path = argv[i] + 8;
      if (flusher.trace_path.empty()) {
        std::fprintf(stderr, "--trace needs a file path\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--trace-categories=", 19) == 0) {
      bool ok = true;
      trace_categories = ParseTraceCategories(argv[i] + 19, &ok);
      if (!ok) {
        std::fprintf(stderr,
                     "--trace-categories: unknown category in '%s' "
                     "(known: chase,pool,decider,storage,fuzz)\n",
                     argv[i] + 19);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--load-csv=", 11) == 0) {
      load_csv_path = argv[i] + 11;
      if (load_csv_path.empty()) {
        std::fprintf(stderr, "--load-csv needs a file path\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--edb-dir=", 10) == 0) {
      edb_dir = argv[i] + 10;
      if (edb_dir.empty()) {
        std::fprintf(stderr, "--edb-dir needs a directory path\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      flusher.metrics_path = argv[i] + 15;
      if (flusher.metrics_path.empty()) {
        std::fprintf(stderr, "--metrics-json needs a file path\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      progress_interval_ms = 1000;
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      progress_interval_ms = std::strtoull(argv[i] + 11, nullptr, 10);
      if (progress_interval_ms == 0) {
        std::fprintf(stderr, "--progress needs a positive interval in ms\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--progress-file=", 16) == 0) {
      progress_file = argv[i] + 16;
      if (progress_file.empty()) {
        std::fprintf(stderr, "--progress-file needs a file path\n");
        return 2;
      }
      if (progress_interval_ms == 0) progress_interval_ms = 1000;
    } else if (std::strncmp(argv[i], "--join-plans=", 13) == 0) {
      const char* value = argv[i] + 13;
      if (std::strcmp(value, "on") == 0) {
        join_plans = true;
      } else if (std::strcmp(value, "off") == 0) {
        join_plans = false;
      } else {
        std::fprintf(stderr, "--join-plans needs 'on' or 'off', got '%s'\n",
                     value);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<uint32_t>(std::strtoul(argv[i] + 10, nullptr, 10));
      if (threads == 0) threads = 1;
      // Oversubscribing buys nothing for a CPU-bound fan-out; cap at what
      // the machine actually has (hardware_concurrency can report 0 when
      // unknown — treat that as 1).
      const uint32_t cores =
          std::max(1u, std::thread::hardware_concurrency());
      if (threads > cores) {
        std::fprintf(stderr,
                     "%% --threads=%u exceeds hardware_concurrency=%u; "
                     "capping\n",
                     threads, cores);
        threads = cores;
      }
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::strtoll(argv[i] + 14, nullptr, 10);
      if (deadline_ms < 0) {
        std::fprintf(stderr, "--deadline-ms needs a non-negative value\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--max-memory-mb=", 16) == 0) {
      const uint64_t mb = std::strtoull(argv[i] + 16, nullptr, 10);
      if (mb == 0) {
        std::fprintf(stderr, "--max-memory-mb needs a positive value\n");
        return 2;
      }
      max_memory_bytes = mb * (uint64_t{1} << 20);
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (!flusher.trace_path.empty()) {
    Tracer::Config trace_config;
    trace_config.categories = trace_categories;
    Tracer::Global().Start(trace_config);
  }
  // --metrics-json turns the profiling layer on with it: latency
  // histograms start recording and the perf_event probe runs (degrading
  // to an "unavailable" snapshot section when the kernel says no).
  if (!flusher.metrics_path.empty()) {
    SetProfilingEnabled(true);
    EnablePerfCounters();
  }

  // One budget shared by the loader, the chase and the heartbeat (the
  // run would otherwise create a private one the reporter cannot see).
  std::shared_ptr<MemoryBudget> shared_budget;
  if (max_memory_bytes > 0) {
    shared_budget = std::make_shared<MemoryBudget>(max_memory_bytes);
  }
  if (progress_interval_ms > 0) {
    ProgressReporter::Options popts;
    popts.mode = ProgressReporter::Mode::kChase;
    popts.interval_ms = progress_interval_ms;
    popts.ndjson_path = progress_file;
    if (shared_budget != nullptr) {
      std::shared_ptr<MemoryBudget> budget = shared_budget;
      popts.in_use_bytes = [budget] { return budget->in_use_bytes(); };
      popts.budget_bytes = [budget] { return budget->hard_limit_bytes(); };
    }
    if (deadline_ms >= 0) {
      const Deadline heartbeat_deadline = Deadline::AfterMillis(deadline_ms);
      popts.remaining_seconds = [heartbeat_deadline] {
        const double remaining = heartbeat_deadline.RemainingSeconds();
        return remaining < 0.0 ? 0.0 : remaining;
      };
    }
    if (!flusher.progress.Start(popts)) {
      std::fprintf(stderr, "cannot write progress to %s\n",
                   progress_file.c_str());
      return 2;
    }
  }

  std::signal(SIGINT, HandleSigint);
  if (want_decide) {
    return RunDecideMode(*parsed, deadline_ms, threads, max_memory_bytes);
  }

  ChaseOptions options;
  options.max_atoms = 10000;
  options.track_provenance = want_dot;
  options.discovery_threads = threads;
  options.join_plans = join_plans;
  if (deadline_ms >= 0) options.deadline = Deadline::AfterMillis(deadline_ms);
  options.cancel = g_cancel;
  options.max_memory_bytes = max_memory_bytes;
  options.memory_budget = shared_budget;
  if (argc > 2) {
    if (std::strcmp(argv[2], "oblivious") == 0) {
      options.variant = ChaseVariant::kOblivious;
    } else if (std::strcmp(argv[2], "semi-oblivious") == 0) {
      options.variant = ChaseVariant::kSemiOblivious;
    } else if (std::strcmp(argv[2], "restricted") == 0) {
      options.variant = ChaseVariant::kRestricted;
    } else {
      std::fprintf(stderr, "unknown variant '%s'\n", argv[2]);
      return 2;
    }
  }
  if (argc > 3) options.max_atoms = std::strtoull(argv[3], nullptr, 10);

  // EDB-backed seeding: resolve the database source before constructing
  // the run so the loader and the chase share one memory budget (a load
  // that trips it surfaces as exit 6, like a mid-run trip).
  std::unique_ptr<EdbDatabase> edb;
  if (!load_csv_path.empty() || !edb_dir.empty()) {
    if (max_memory_bytes > 0 && options.memory_budget == nullptr) {
      options.memory_budget = std::make_shared<MemoryBudget>(max_memory_bytes);
    }
    MemoryBudget* budget = options.memory_budget.get();
    const std::string snapshot_path = edb_dir + "/edb.gsnap";
    if (!edb_dir.empty()) {
      StatusOr<std::unique_ptr<EdbDatabase>> opened =
          OpenEdbSnapshot(snapshot_path, budget);
      if (opened.ok()) {
        edb = std::move(*opened);
        std::fprintf(stderr, "%% database memory-mapped from %s\n",
                     snapshot_path.c_str());
      } else if (opened.status().code() != StatusCode::kNotFound) {
        // A snapshot that exists but fails validation is an error, not a
        // cache miss — silently rebuilding would hide corruption.
        std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
        return 1;
      }
    }
    if (edb == nullptr) {
      if (load_csv_path.empty()) {
        std::fprintf(stderr,
                     "--edb-dir: %s not found and no --load-csv to build it "
                     "from\n",
                     snapshot_path.c_str());
        return 2;
      }
      BulkLoadOptions load_options;
      load_options.budget = budget;
      load_options.schema = &parsed->vocabulary.schema;
      StatusOr<std::unique_ptr<InMemoryEdb>> loaded =
          LoadCsvFactsFile(load_csv_path, load_options);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 1;
      }
      edb = std::move(*loaded);
      if (!edb_dir.empty() && !edb->load_stats().memory_exceeded) {
        Status written = WriteEdbSnapshot(*edb, snapshot_path);
        if (written.ok()) {
          std::fprintf(stderr, "%% snapshot written to %s\n",
                       snapshot_path.c_str());
        } else {
          std::fprintf(stderr, "%% cannot write snapshot: %s\n",
                       written.ToString().c_str());
        }
      }
    }
    if (!parsed->facts.empty()) {
      std::fprintf(stderr,
                   "%% note: %zu inline facts in %s ignored (the database "
                   "comes from the EDB)\n",
                   parsed->facts.size(), argv[1]);
    }
  }

  WallTimer timer;
  std::optional<ChaseRun> run;
  if (edb != nullptr) {
    run.emplace(parsed->rules, options, *edb, &parsed->vocabulary);
    if (!run->seed_status().ok()) {
      std::fprintf(stderr, "%s\n", run->seed_status().ToString().c_str());
      return 1;
    }
  } else {
    run.emplace(parsed->rules, options, parsed->facts);
  }
  ChaseOutcome outcome = run->Execute();
  double seconds = timer.ElapsedSeconds();
  PublishChaseMetrics(run->stats());

  const bool aborted = outcome == ChaseOutcome::kDeadlineExceeded ||
                       outcome == ChaseOutcome::kCancelled ||
                       outcome == ChaseOutcome::kMemoryBudgetExceeded;
  if (aborted) {
    // The instance and stats below are a valid prefix of the run, just
    // not a fixpoint; say so loudly and include the partial stats.
    std::fprintf(stderr, "%% run stopped early: %s after %.3fms\n",
                 ChaseOutcomeName(outcome), seconds * 1e3);
    std::fprintf(stderr, "%% partial stats: %s\n",
                 gchase::bench_util::ChaseStatsToJson(run->stats()).c_str());
  }

  if (want_dot) {
    StatusOr<ChaseForest> forest = ChaseForest::Build(*run);
    if (!forest.ok()) {
      std::fprintf(stderr, "%s\n", forest.status().ToString().c_str());
      return 1;
    }
    PublishForestMetrics(forest->Stats());
    std::printf("%s", forest->ToDot(parsed->vocabulary).c_str());
    return ExitCodeFor(outcome);
  }

  if (want_stats) {
    std::printf("%s\n",
                gchase::bench_util::ChaseStatsToJson(run->stats()).c_str());
    return ExitCodeFor(outcome);
  }

  std::printf("%% variant=%s outcome=%s atoms=%u triggers=%llu nulls=%llu "
              "rounds=%llu time=%.3fms\n",
              ChaseVariantName(options.variant), ChaseOutcomeName(outcome),
              run->instance().size(),
              static_cast<unsigned long long>(run->applied_triggers()),
              static_cast<unsigned long long>(run->nulls_created()),
              static_cast<unsigned long long>(run->rounds()),
              seconds * 1e3);
  for (gchase::AtomView atom : run->instance().atoms()) {
    std::printf("%s.\n",
                AtomToString(atom.ToAtom(), parsed->vocabulary).c_str());
  }
  return ExitCodeFor(outcome);
}
