// edb_gen: deterministic large-scale fact-file generator for the
// bulk-load experiments (E13) and the CI load-smoke gate.
//
// Usage:
//   ./build/tools/edb_gen --out=FILE [--profile=chain|star] [--atoms=N]
//                         [--seed=N] [--format=csv|dlgp] [--rules-out=FILE]
//     --out=FILE       fact file to write (required)
//     --profile        graph shape (default chain); see
//                      generator/fact_emitter.h
//     --atoms=N        total facts to emit (default 1000000)
//     --seed=N         namespaces the constants (default 0); the output
//                      is a pure function of (profile, atoms, seed,
//                      format) — byte-identical across runs
//     --format         csv (bulk-loader format) or dlgp (parser facts)
//     --rules-out=FILE also write the bounded companion rule set, so
//                      `chase_cli FILE.dlgp --load-csv=FILE.csv` has a
//                      terminating program to run
//
// Exit codes: 0 ok, 1 I/O error, 2 bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "generator/fact_emitter.h"

int main(int argc, char** argv) {
  using namespace gchase;
  FactEmitterOptions options;
  options.num_atoms = 1000000;
  std::string out_path;
  std::string rules_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--rules-out=", 12) == 0) {
      rules_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      StatusOr<FactProfile> profile = FactProfileFromName(argv[i] + 10);
      if (!profile.ok()) {
        std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
        return 2;
      }
      options.profile = *profile;
    } else if (std::strncmp(argv[i], "--atoms=", 8) == 0) {
      options.num_atoms = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--format=", 9) == 0) {
      const char* value = argv[i] + 9;
      if (std::strcmp(value, "csv") == 0) {
        options.format = FactFileFormat::kCsv;
      } else if (std::strcmp(value, "dlgp") == 0) {
        options.format = FactFileFormat::kDlgp;
      } else {
        std::fprintf(stderr, "--format needs 'csv' or 'dlgp', got '%s'\n",
                     value);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (out_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --out=FILE [--profile=chain|star] [--atoms=N] "
                 "[--seed=N] [--format=csv|dlgp] [--rules-out=FILE]\n",
                 argv[0]);
    return 2;
  }
  Status emitted = EmitFactFile(options, out_path);
  if (!emitted.ok()) {
    std::fprintf(stderr, "%s\n", emitted.ToString().c_str());
    return 1;
  }
  if (!rules_path.empty()) {
    std::FILE* rules = std::fopen(rules_path.c_str(), "wb");
    if (rules == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", rules_path.c_str());
      return 1;
    }
    const std::string text = BoundedFactRules();
    const bool ok = std::fwrite(text.data(), 1, text.size(), rules) ==
                        text.size() &&
                    std::fclose(rules) == 0;
    if (!ok) {
      std::fprintf(stderr, "short write on %s\n", rules_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "%% wrote %llu facts to %s\n",
               static_cast<unsigned long long>(options.num_atoms),
               out_path.c_str());
  return 0;
}
