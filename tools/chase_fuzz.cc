// chase_fuzz: differential fuzzing driver for the chase engines and
// termination deciders. Generates random (Σ, D) pairs via the seeded
// generator and checks invariants the paper guarantees (see
// docs/fuzzing.md for the oracle ↔ theorem table). Any violation is
// shrunk by greedy delta debugging and written as a self-contained
// repro file that `fuzz_corpus_test` replays forever after.
//
// Usage:
//   chase_fuzz [--trials=N] [--seed=S] [--deadline-ms=M]
//              [--total-deadline-ms=M] [--oracles=a,b,...]
//              [--corpus-dir=DIR] [--json=FILE] [--profile=sl|l|g|mixed]
//              [--no-shrink] [--verbose] [--list-oracles]
//              [--trace=FILE] [--trace-categories=LIST]
//              [--metrics-json=FILE] [--progress[=MS]]
//              [--progress-file=FILE]
//     --trials=N            trials to run (default 100)
//     --seed=S              campaign seed; same seed => bit-identical
//                           campaign (default 1)
//     --deadline-ms=M       wall-clock backstop per oracle evaluation —
//                           the deterministic work caps do the real
//                           bounding; this only guards against hangs
//                           (default 10000)
//     --total-deadline-ms=M whole-campaign budget; the nightly CI job
//                           sets ~15 minutes (default: none)
//     --oracles=a,b         comma list of oracle names (default: all;
//                           see --list-oracles)
//     --corpus-dir=DIR      write shrunken repros here (default: none)
//     --json=FILE           write the BENCH_-style report here ('-' or
//                           absent: stdout)
//     --profile=P           rule-class mix: sl, l, g, or mixed (default)
//     --no-shrink           report violations unminimized
//     --verbose             per-trial progress on stderr
//     --trace=FILE          Chrome-trace/Perfetto JSON of the campaign
//                           (fuzz.trial / fuzz.oracle / fuzz.shrink spans
//                           plus whatever chase/decider/pool categories
//                           are enabled); flushed even on Ctrl-C
//     --trace-categories=L  comma subset of chase,pool,decider,storage,
//                           fuzz (default: all)
//     --metrics-json=FILE   metrics registry snapshot (fuzz.* counters,
//                           latency histograms, per-phase perf section);
//                           written even when the campaign stops early.
//                           Also enables the profiling layer
//     --progress[=MS]       heartbeat: trials started/run/failed and
//                           trials/s every MS milliseconds (default
//                           1000) on stderr — long campaigns are no
//                           longer silent until the end
//     --progress-file=FILE  heartbeat as NDJSON to FILE instead
//
// Exit codes: 0 all oracles passed, 1 usage/IO error, 2 violations
// found, 3 campaign stopped early (total deadline / SIGINT) without
// violations.
//
// Ctrl-C trips the cancellation token: the trial in flight stops at its
// next governor checkpoint and the report covers what ran.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "fuzz/runner.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace {

gchase::CancellationToken g_cancel;

extern "C" void HandleSigint(int) { g_cancel.RequestCancel(); }

bool ParseUint64Flag(const char* arg, const char* name, uint64_t* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  *value = std::strtoull(arg + len, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gchase;
  FuzzRunnerOptions options;
  options.trials = 100;
  options.seed = 1;
  std::string json_path = "-";
  std::string trace_path;
  std::string metrics_path;
  uint32_t trace_categories = kAllTraceCategories;
  uint64_t total_deadline_ms = 0;
  uint64_t progress_interval_ms = 0;  // 0 = heartbeat off.
  std::string progress_file;
  std::string profile = "mixed";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (ParseUint64Flag(arg, "--trials=", &options.trials)) {
    } else if (ParseUint64Flag(arg, "--seed=", &options.seed)) {
    } else if (ParseUint64Flag(arg, "--deadline-ms=", &value)) {
      options.trial_deadline_ms = static_cast<int64_t>(value);
    } else if (ParseUint64Flag(arg, "--total-deadline-ms=",
                               &total_deadline_ms)) {
    } else if (std::strncmp(arg, "--oracles=", 10) == 0) {
      std::string list = arg + 10;
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string name = list.substr(start, comma - start);
        start = comma + 1;
        if (name.empty()) continue;
        std::optional<OracleId> oracle = OracleByName(name);
        if (!oracle.has_value()) {
          std::fprintf(stderr, "unknown oracle: %s (try --list-oracles)\n",
                       name.c_str());
          return 1;
        }
        options.oracles.push_back(*oracle);
      }
    } else if (std::strncmp(arg, "--corpus-dir=", 13) == 0) {
      options.corpus_dir = arg + 13;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strncmp(arg, "--trace-categories=", 19) == 0) {
      bool ok = true;
      trace_categories = ParseTraceCategories(arg + 19, &ok);
      if (!ok) {
        std::fprintf(stderr,
                     "unknown trace category in '%s' "
                     "(known: chase,pool,decider,storage,fuzz)\n",
                     arg + 19);
        return 1;
      }
    } else if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
      metrics_path = arg + 15;
    } else if (std::strcmp(arg, "--progress") == 0) {
      progress_interval_ms = 1000;
    } else if (std::strncmp(arg, "--progress=", 11) == 0) {
      progress_interval_ms = std::strtoull(arg + 11, nullptr, 10);
      if (progress_interval_ms == 0) {
        std::fprintf(stderr, "--progress needs a positive interval in ms\n");
        return 1;
      }
    } else if (std::strncmp(arg, "--progress-file=", 16) == 0) {
      progress_file = arg + 16;
      if (progress_file.empty()) {
        std::fprintf(stderr, "--progress-file needs a file path\n");
        return 1;
      }
      if (progress_interval_ms == 0) progress_interval_ms = 1000;
    } else if (std::strncmp(arg, "--profile=", 10) == 0) {
      profile = arg + 10;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      options.shrink = false;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(arg, "--list-oracles") == 0) {
      for (OracleId oracle : AllOracles()) {
        std::printf("%s\n", OracleName(oracle));
      }
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 1;
    }
  }

  if (profile == "sl") {
    options.case_options.weights = {1.0, 0.0, 0.0, 0.0};
  } else if (profile == "l") {
    options.case_options.weights = {0.0, 1.0, 0.0, 0.0};
  } else if (profile == "g") {
    options.case_options.weights = {0.0, 0.0, 1.0, 0.0};
  } else if (profile == "mixed") {
    // Default ClassWeights: SL/L/G equally, no unrestricted-general sets
    // (no oracle is exact there).
  } else {
    std::fprintf(stderr, "unknown profile: %s (sl|l|g|mixed)\n",
                 profile.c_str());
    return 1;
  }
  if (total_deadline_ms > 0) {
    options.total_deadline =
        Deadline::AfterMillis(static_cast<int64_t>(total_deadline_ms));
  }
  options.cancel = g_cancel;
  std::signal(SIGINT, HandleSigint);

  if (!trace_path.empty()) {
    Tracer::Config trace_config;
    trace_config.categories = trace_categories;
    Tracer::Global().Start(trace_config);
  }
  if (!metrics_path.empty()) {
    SetProfilingEnabled(true);
    EnablePerfCounters();
  }

  // Heartbeat for long campaigns: the nightly 15-minute job used to be
  // silent until the very end — this reports trials started/run/failed
  // (and trials/s) while it runs, with a final sample on any exit.
  ProgressReporter progress;
  if (progress_interval_ms > 0) {
    ProgressReporter::Options popts;
    popts.mode = ProgressReporter::Mode::kFuzz;
    popts.interval_ms = progress_interval_ms;
    popts.ndjson_path = progress_file;
    if (total_deadline_ms > 0) {
      const Deadline heartbeat_deadline = options.total_deadline;
      popts.remaining_seconds = [heartbeat_deadline] {
        const double remaining = heartbeat_deadline.RemainingSeconds();
        return remaining < 0.0 ? 0.0 : remaining;
      };
    }
    if (!progress.Start(popts)) {
      std::fprintf(stderr, "cannot write progress to %s\n",
                   progress_file.c_str());
      return 1;
    }
  }

  FuzzReport report = RunFuzz(options);
  progress.Stop();

  // Everything below runs on every exit path, including a SIGINT-cut
  // campaign: RunFuzz stops cooperatively and returns the partial report,
  // so the JSON, trace and metrics always cover what actually ran.
  PublishFuzzMetrics(report);
  if (!trace_path.empty()) {
    Tracer::Global().Stop();
    const std::string summary_path = trace_path + ".summary.json";
    if (WriteGlobalTrace(trace_path) &&
        WriteGlobalTraceSummary(summary_path)) {
      std::fprintf(stderr, "%% trace written to %s (summary: %s)\n%s",
                   trace_path.c_str(), summary_path.c_str(),
                   TraceFlameSummary(Tracer::Global().Collect()).c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    if (!metrics_out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    metrics_out << MetricsRegistry::Global().SnapshotJson() << "\n";
  }

  const std::string json = FuzzReportToJson(options, report);
  if (json_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << json;
  }

  uint64_t violations = 0;
  for (const OracleCounters& counters : report.per_oracle) {
    violations += counters.violations;
  }
  std::fprintf(stderr,
               "chase_fuzz: %llu trials, %llu violations%s (%.1fs)\n",
               static_cast<unsigned long long>(report.trials_run),
               static_cast<unsigned long long>(violations),
               report.stopped_early ? " (stopped early)" : "",
               report.elapsed_seconds);
  for (const FuzzViolation& violation : report.violations) {
    std::fprintf(stderr, "  %s trial %llu: %s\n    repro: %s\n",
                 OracleName(violation.oracle),
                 static_cast<unsigned long long>(violation.trial),
                 violation.detail.c_str(),
                 violation.repro_path.empty() ? "(not written)"
                                              : violation.repro_path.c_str());
  }
  if (violations > 0) return 2;
  if (report.stopped_early) return 3;
  return 0;
}
